//! GPUWattch-style event-based energy model for the three machines.
//!
//! Energy = Σ (event count × per-event energy) + static power × cycles,
//! evaluated from the statistics each processor model collects. The paper
//! compares energy *per unit of work* (§5: `work/energy`); since all
//! machines execute the same kernel on the same data, the efficiency ratio
//! between two machines is simply the inverse ratio of their total
//! energies.
//!
//! Breakdown levels follow Figure 10: **core** (compute engine, including
//! RF / LVC / CVT), **die** (core + L1 + L2 + memory controller /
//! interconnect) and **system** (die + DRAM).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod tables;

pub use tables::EnergyTable;

use vgiw_core::VgiwRunStats;
use vgiw_mem::MemStats;
use vgiw_sgmf::SgmfRunStats;
use vgiw_simt::SimtRunStats;
use vgiw_trace::Counters;

/// Energy totals (picojoules) at the paper's three reporting levels.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct EnergyBreakdown {
    /// Compute engine: datapath + control + core-local storage.
    pub core: f64,
    /// L1-level caches (data L1 and, for VGIW, the LVC array dynamic part
    /// is counted in core; this is the transaction side).
    pub l1: f64,
    /// Shared L2.
    pub l2: f64,
    /// DRAM dynamic + background.
    pub dram: f64,
}

impl EnergyBreakdown {
    /// Core-level total (Figure 10 "core").
    pub fn core_level(&self) -> f64 {
        self.core
    }

    /// Die-level total (Figure 10 "die"): core + caches.
    pub fn die_level(&self) -> f64 {
        self.core + self.l1 + self.l2
    }

    /// System-level total (Figure 10 "system"): die + DRAM.
    pub fn system_level(&self) -> f64 {
        self.die_level() + self.dram
    }
}

/// The energy model: an [`EnergyTable`] applied to run statistics.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct EnergyModel {
    /// Per-event energies.
    pub table: EnergyTable,
}

impl EnergyModel {
    /// A model with the default table.
    pub fn new() -> EnergyModel {
        EnergyModel::default()
    }

    fn mem_energy(&self, mem: &MemStats, cycles: u64) -> (f64, f64, f64) {
        let t = &self.table;
        let l1_txns: u64 = mem.port.iter().map(|p| p.accesses + p.fills).sum();
        let l1 = l1_txns as f64 * t.l1_access + cycles as f64 * t.die_static * 0.5;
        let l2 = (mem.l2.accesses + mem.l2.fills) as f64 * t.l2_access
            + cycles as f64 * t.die_static * 0.5;
        let dram = (mem.dram.reads + mem.dram.writes) as f64 * t.dram_access
            + cycles as f64 * t.dram_static;
        (l1, l2, dram)
    }

    /// Energy of a VGIW run.
    pub fn vgiw(&self, s: &VgiwRunStats) -> EnergyBreakdown {
        let t = &self.table;
        let f = &s.fabric;
        let datapath = f.int_alu_ops as f64 * t.int_op
            + f.fp_ops as f64 * t.fp_op
            + f.special_ops as f64 * t.sfu_op;
        let transport = f.tokens_delivered as f64 * t.token_buffer
            + f.hop_traversals as f64 * t.hop
            + f.split_join_ops as f64 * t.split_join
            + (f.threads_injected + f.threads_retired) as f64 * t.cvu_event;
        let lvc = (f.lv_loads + f.lv_stores) as f64 * t.lvc_access;
        let cvt = (s.cvt.word_reads + s.cvt.word_writes) as f64 * t.cvt_word;
        let config = s.block_executions as f64 * 108.0 * t.config_per_unit;
        let core = datapath + transport + lvc + cvt + config + s.cycles as f64 * t.core_static;
        // The LVC's cache-transaction side is charged like an L1 port via
        // mem.port[1] inside mem_energy.
        let (l1, l2, dram) = self.mem_energy(&s.mem, s.cycles);
        EnergyBreakdown { core, l1, l2, dram }
    }

    /// Energy of a Fermi-like SIMT run.
    pub fn simt(&self, s: &SimtRunStats) -> EnergyBreakdown {
        let t = &self.table;
        let datapath = s.lane_int_ops as f64 * t.int_op
            + s.lane_fp_ops as f64 * t.fp_op
            + s.lane_sfu_ops as f64 * t.sfu_op;
        let frontend = s.warp_insts as f64 * t.warp_frontend;
        let rf = (s.rf_reads + s.rf_writes) as f64 * t.rf_access;
        let core = datapath + frontend + rf + s.cycles as f64 * t.core_static;
        let (l1, l2, dram) = self.mem_energy(&s.mem, s.cycles);
        EnergyBreakdown { core, l1, l2, dram }
    }

    /// Energy of an SGMF run.
    pub fn sgmf(&self, s: &SgmfRunStats) -> EnergyBreakdown {
        let t = &self.table;
        let f = &s.fabric;
        let datapath = f.int_alu_ops as f64 * t.int_op
            + f.fp_ops as f64 * t.fp_op
            + f.special_ops as f64 * t.sfu_op;
        let transport = f.tokens_delivered as f64 * t.token_buffer
            + f.hop_traversals as f64 * t.hop
            + f.split_join_ops as f64 * t.split_join
            + (f.threads_injected + f.threads_retired) as f64 * t.cvu_event;
        let config = 108.0 * t.config_per_unit; // configured once
        let core = datapath + transport + config + s.cycles as f64 * t.core_static;
        let (l1, l2, dram) = self.mem_energy(&s.mem, s.cycles);
        EnergyBreakdown { core, l1, l2, dram }
    }

    fn mem_energy_counters(
        &self,
        c: &Counters,
        machine: &str,
        ports: &[&str],
        cycles: u64,
    ) -> (f64, f64, f64) {
        let t = &self.table;
        let mut l1_txns: u64 = 0;
        for p in ports {
            l1_txns += c.get_u64(&format!("{machine}.{p}.accesses"))
                + c.get_u64(&format!("{machine}.{p}.fills"));
        }
        let l1 = l1_txns as f64 * t.l1_access + cycles as f64 * t.die_static * 0.5;
        let l2 = (c.get_u64(&format!("{machine}.l2.accesses"))
            + c.get_u64(&format!("{machine}.l2.fills"))) as f64
            * t.l2_access
            + cycles as f64 * t.die_static * 0.5;
        let dram = (c.get_u64(&format!("{machine}.dram.reads"))
            + c.get_u64(&format!("{machine}.dram.writes"))) as f64
            * t.dram_access
            + cycles as f64 * t.dram_static;
        (l1, l2, dram)
    }

    /// Energy of a single launch from its exported [`Counters`] — the keys
    /// written by each machine's `export_counters`. Bit-identical to the
    /// typed paths ([`EnergyModel::vgiw`] etc.) when applied to one
    /// launch's counters: the counters are exact integers, and every
    /// floating-point expression mirrors the typed formula's operation
    /// order. (Applied to counters merged across several launches, sums of
    /// per-launch breakdowns and a breakdown of the summed counters differ
    /// only by f64 re-association of the per-launch static terms.)
    ///
    /// # Panics
    /// Panics on an unknown machine name.
    pub fn from_counters(&self, machine: &str, c: &Counters) -> EnergyBreakdown {
        let t = &self.table;
        let g = |name: &str| c.get_u64(&format!("{machine}.{name}"));
        match machine {
            "vgiw" | "sgmf" => {
                let datapath = g("fabric.int_alu_ops") as f64 * t.int_op
                    + g("fabric.fp_ops") as f64 * t.fp_op
                    + g("fabric.special_ops") as f64 * t.sfu_op;
                let transport = g("fabric.tokens_delivered") as f64 * t.token_buffer
                    + g("fabric.hop_traversals") as f64 * t.hop
                    + g("fabric.split_join_ops") as f64 * t.split_join
                    + (g("fabric.threads_injected") + g("fabric.threads_retired")) as f64
                        * t.cvu_event;
                let cycles = g("cycles");
                let core = if machine == "vgiw" {
                    let lvc = (g("fabric.lv_loads") + g("fabric.lv_stores")) as f64 * t.lvc_access;
                    let cvt = (g("cvt.word_reads") + g("cvt.word_writes")) as f64 * t.cvt_word;
                    let config = g("block_executions") as f64 * 108.0 * t.config_per_unit;
                    datapath + transport + lvc + cvt + config + cycles as f64 * t.core_static
                } else {
                    // One static configuration per launch.
                    let config = g("launches") as f64 * (108.0 * t.config_per_unit);
                    datapath + transport + config + cycles as f64 * t.core_static
                };
                let ports: &[&str] = if machine == "vgiw" {
                    &["l1", "lvc"]
                } else {
                    &["l1"]
                };
                let (l1, l2, dram) = self.mem_energy_counters(c, machine, ports, cycles);
                EnergyBreakdown { core, l1, l2, dram }
            }
            "simt" => {
                let datapath = g("lane_int_ops") as f64 * t.int_op
                    + g("lane_fp_ops") as f64 * t.fp_op
                    + g("lane_sfu_ops") as f64 * t.sfu_op;
                let frontend = g("warp_insts") as f64 * t.warp_frontend;
                let rf = (g("rf_reads") + g("rf_writes")) as f64 * t.rf_access;
                let cycles = g("cycles");
                let core = datapath + frontend + rf + cycles as f64 * t.core_static;
                let (l1, l2, dram) = self.mem_energy_counters(c, machine, &["l1"], cycles);
                EnergyBreakdown { core, l1, l2, dram }
            }
            other => panic!("unknown machine {other:?}"),
        }
    }
}

/// Energy-efficiency ratio of `b` relative to `a` at system level:
/// `> 1` means `a` is more efficient (uses less energy for the same work).
pub fn efficiency_ratio(a: &EnergyBreakdown, b: &EnergyBreakdown) -> f64 {
    b.system_level() / a.system_level()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgiw_ir::{KernelBuilder, Launch, MemoryImage, Word};

    fn sample_kernel() -> vgiw_ir::Kernel {
        let mut b = KernelBuilder::new("e", 1);
        let tid = b.thread_id();
        let base = b.param(0);
        let addr = b.add(base, tid);
        let sq = b.mul(tid, tid);
        let f = b.u2f(sq);
        let r = b.fsqrt(f);
        let v = b.f2i(r);
        b.store(addr, v);
        b.finish()
    }

    #[test]
    fn energies_are_positive_and_ordered() {
        let k = sample_kernel();
        let launch = Launch::new(256, vec![Word::from_u32(0)]);
        let model = EnergyModel::new();

        let mut m1 = MemoryImage::new(512);
        let mut vgiw = vgiw_core::VgiwProcessor::default();
        let vs = vgiw.run(&k, &launch, &mut m1).unwrap();
        let ve = model.vgiw(&vs);

        let mut m2 = MemoryImage::new(512);
        let mut simt = vgiw_simt::SimtProcessor::default();
        let ss = simt.run(&k, &launch, &mut m2).unwrap();
        let se = model.simt(&ss);

        for e in [&ve, &se] {
            assert!(e.core > 0.0 && e.l1 > 0.0 && e.dram > 0.0);
            assert!(e.system_level() > e.die_level());
            assert!(e.die_level() > e.core_level());
        }
        // Same work, so efficiency ratio is energy ratio.
        let ratio = efficiency_ratio(&ve, &se);
        assert!(ratio.is_finite() && ratio > 0.0);
    }

    #[test]
    fn counters_path_matches_typed_path_exactly() {
        let k = sample_kernel();
        let launch = Launch::new(256, vec![Word::from_u32(0)]);
        let model = EnergyModel::new();

        let mut m1 = MemoryImage::new(512);
        let mut vgiw = vgiw_core::VgiwProcessor::default();
        let vs = vgiw.run(&k, &launch, &mut m1).unwrap();
        let mut vc = Counters::new();
        vs.export_counters(&mut vc);
        assert_eq!(model.vgiw(&vs), model.from_counters("vgiw", &vc));

        let mut m2 = MemoryImage::new(512);
        let mut simt = vgiw_simt::SimtProcessor::default();
        let ss = simt.run(&k, &launch, &mut m2).unwrap();
        let mut sc = Counters::new();
        ss.export_counters(&mut sc);
        assert_eq!(model.simt(&ss), model.from_counters("simt", &sc));

        let mut m3 = MemoryImage::new(512);
        let mut sgmf = vgiw_sgmf::SgmfProcessor::default();
        let gs = sgmf.run(&k, &launch, &mut m3).unwrap();
        let mut gc = Counters::new();
        gs.export_counters(&mut gc);
        gc.add_u64("sgmf.launches", 1);
        assert_eq!(model.sgmf(&gs), model.from_counters("sgmf", &gc));
    }

    #[test]
    fn breakdown_levels_accumulate() {
        let e = EnergyBreakdown {
            core: 1.0,
            l1: 2.0,
            l2: 3.0,
            dram: 4.0,
        };
        assert_eq!(e.core_level(), 1.0);
        assert_eq!(e.die_level(), 6.0);
        assert_eq!(e.system_level(), 10.0);
    }
}
