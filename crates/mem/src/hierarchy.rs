//! The cycle-stepped memory hierarchy: banked L1 ports → shared L2 → GDDR5.
//!
//! The hierarchy is a *timing* model: functional data lives in
//! `vgiw_ir::MemoryImage` and is read/written by the cores at issue time
//! (threads in the evaluated kernels are data-parallel, so there are no
//! intra-launch read-after-write dependencies between threads to order).
//!
//! Requests are accepted through [`MemSystem::access`] (or a whole cycle's
//! worth at once through [`MemSystem::access_batch`]) and complete through
//! [`MemSystem::drain_responses`] — or, on the zero-copy path, directly
//! into the client via [`MemSystem::tick_deliver`] — after a latency that
//! accumulates port contention, MSHR behaviour, L2 bank contention and
//! DRAM channel/bank occupancy. Contention is modelled with busy-until
//! counters, which is exact for in-order per-bank service.
//!
//! Two L1-level *ports* can be attached: the data L1 and (for VGIW) the
//! live value cache, both backed by the same L2, as in the paper (§3.4).
//!
//! # Fast path vs. reference path
//!
//! Request acceptance has two implementations that are bit-identical in
//! everything observable (acceptance, response timing and order, all
//! statistics):
//!
//! * the **fast path** (default) checks the bank's MSHRs *before* the tag
//!   scan — sound because an MSHR for a line exists only while that line
//!   is absent from the array (an MSHR is allocated only on a probe miss,
//!   and the fill pops it before installing the line), so an MSHR hit
//!   proves the probe would have missed. Secondary misses therefore skip
//!   the tag scan entirely, and hits resolve through the bank's one-entry
//!   way-prediction hint. Batches additionally memoize one probe per
//!   distinct line (see [`MemSystem::access_batch`]).
//! * the **reference path** (enabled by [`MemSystem::set_reference`]) is
//!   the original probe-first per-request interpreter, kept as the
//!   equivalence oracle; `mem/tests/reference_equivalence.rs` and ci.sh's
//!   `--reference-mem` golden pass hold the two together.

use crate::cache::{CacheArray, CacheGeometry};
use crate::stats::{MemPhases, MemStats};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Instant;
use vgiw_snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};
use vgiw_trace::{TraceEvent, Tracer};

/// Length of the event timing wheel (a power of two). Events within one
/// revolution of `now` go to a wheel slot (O(1) schedule/dispatch, no
/// allocation after warm-up); farther events — chiefly DRAM completions
/// behind a deep busy-until backlog — overflow into a small binary heap
/// and are popped directly when due.
const EVENT_WHEEL: usize = 256;
const EVENT_WHEEL_MASK: u64 = EVENT_WHEEL as u64 - 1;

/// Minimum batch size for the coalesced replay in
/// [`MemSystem::access_batch`]; smaller (or fully-distinct) batches take
/// the direct per-request loop, whose overhead is already minimal.
const COALESCE_MIN_BATCH: usize = 4;

/// Write policy of an L1-level cache.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WritePolicy {
    /// Dirty lines stay in the cache until eviction (VGIW L1, paper §3.6).
    WriteBack,
    /// Stores are forwarded to L2 immediately (Fermi L1).
    WriteThrough,
}

/// Allocation policy for store misses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AllocPolicy {
    /// Store misses fetch and install the line (VGIW).
    WriteAllocate,
    /// Store misses bypass the cache (Fermi).
    WriteNoAllocate,
}

/// Configuration of one L1-level port (data L1 or LVC).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct L1Config {
    /// Geometry of the cache behind this port.
    pub geometry: CacheGeometry,
    /// Write policy.
    pub write_policy: WritePolicy,
    /// Store-miss allocation policy.
    pub alloc_policy: AllocPolicy,
    /// Hit latency in core cycles.
    pub hit_latency: u64,
    /// Outstanding misses per bank.
    pub mshrs_per_bank: u32,
    /// Accepted-but-unserviced backlog per bank before the port rejects.
    pub queue_depth: u64,
}

impl L1Config {
    /// The paper's VGIW L1: 64KB/32 banks/128B/4-way, write-back +
    /// write-allocate.
    pub fn vgiw_l1() -> L1Config {
        L1Config {
            geometry: CacheGeometry {
                size_bytes: 64 * 1024,
                line_bytes: 128,
                ways: 4,
                banks: 32,
            },
            write_policy: WritePolicy::WriteBack,
            alloc_policy: AllocPolicy::WriteAllocate,
            hit_latency: 4,
            mshrs_per_bank: 8,
            queue_depth: 8,
        }
    }

    /// The Fermi SM's L1: one 128-byte port (a single bank at transaction
    /// granularity — the SM coalesces warp accesses into line-sized
    /// transactions), 32 MSHRs, write-through + no-allocate, and the
    /// ~2-dozen-cycle hit latency GPGPU-Sim models for Fermi.
    pub fn fermi_l1() -> L1Config {
        L1Config {
            geometry: CacheGeometry {
                size_bytes: 64 * 1024,
                line_bytes: 128,
                ways: 4,
                banks: 1,
            },
            write_policy: WritePolicy::WriteThrough,
            alloc_policy: AllocPolicy::WriteNoAllocate,
            hit_latency: 24,
            mshrs_per_bank: 32,
            queue_depth: 8,
        }
    }

    /// The paper's 64KB live value cache, banked like an L1 (§3.4), with
    /// word-granularity lines kept reasonably small.
    pub fn lvc() -> L1Config {
        L1Config {
            geometry: CacheGeometry {
                size_bytes: 64 * 1024,
                line_bytes: 64,
                ways: 4,
                banks: 16,
            },
            write_policy: WritePolicy::WriteBack,
            alloc_policy: AllocPolicy::WriteAllocate,
            hit_latency: 3,
            mshrs_per_bank: 8,
            queue_depth: 8,
        }
    }
}

/// Configuration of the shared levels (L2 + DRAM).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SharedConfig {
    /// L2 geometry (the paper: 768KB, 6 banks, 128B lines, 16-way).
    pub l2_geometry: CacheGeometry,
    /// Additional latency of an L2 hit, in core cycles (includes the
    /// interconnect hop between the core and the L2 partition).
    pub l2_hit_latency: u64,
    /// Core cycles per L2 bank service slot (L2 runs at half core clock).
    pub l2_cycle_ratio: u64,
    /// Number of DRAM channels.
    pub dram_channels: u32,
    /// DRAM banks per channel.
    pub dram_banks_per_channel: u32,
    /// Core cycles a line transfer occupies a channel's data bus.
    pub dram_channel_occupancy: u64,
    /// Core cycles a bank is busy serving one access (activate+CAS+precharge).
    pub dram_bank_occupancy: u64,
    /// Total DRAM access latency in core cycles (queuing excluded).
    pub dram_latency: u64,
}

impl SharedConfig {
    /// The paper's Table 1 memory system (clock ratios folded into
    /// core-cycle latencies).
    pub fn fermi_like() -> SharedConfig {
        SharedConfig {
            l2_geometry: CacheGeometry {
                size_bytes: 768 * 1024,
                line_bytes: 128,
                ways: 16,
                banks: 6,
            },
            l2_hit_latency: 100,
            l2_cycle_ratio: 2,
            dram_channels: 6,
            dram_banks_per_channel: 16,
            dram_channel_occupancy: 6,
            dram_bank_occupancy: 36,
            dram_latency: 300,
        }
    }
}

/// Identifies which L1-level port a request enters through.
pub type PortId = usize;

/// Caller-chosen request identifier, echoed back on completion.
pub type ReqId = u64;

/// One request of a bulk-intake batch (see [`MemSystem::access_batch`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BatchReq {
    /// 32-bit word address.
    pub addr_words: u32,
    /// Whether the request is a store.
    pub is_store: bool,
    /// Caller-chosen identifier, echoed back on completion.
    pub id: ReqId,
}

/// A completed request as handed to a [`ResponseSink`] by
/// [`MemSystem::tick_deliver`]: the delivery descriptor carries the
/// arrival cycle and the within-cycle write sequence so the client can
/// place the completion directly into its own buffers (token arena, LVC
/// scoreboard) without the response round-tripping through a queue.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Delivery {
    /// The request identifier passed to `access`/`access_batch`.
    pub id: ReqId,
    /// Core cycle the response arrives (the cycle being ticked).
    pub cycle: u64,
    /// Position of this delivery within its cycle (0-based, dispatch
    /// order — identical to the order `drain_responses` would return).
    pub seq: u32,
}

/// Client-side receiver for zero-copy response delivery (see
/// [`MemSystem::tick_deliver`]).
pub trait ResponseSink {
    /// Called once per completed request, in dispatch order.
    fn deliver(&mut self, delivery: Delivery);
}

impl ResponseSink for Vec<Delivery> {
    fn deliver(&mut self, delivery: Delivery) {
        self.push(delivery);
    }
}

#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
enum Event {
    /// Deliver a completed request to the client.
    Respond(ReqId),
    /// Install a line into an L1 bank and release its MSHR.
    FillL1 { port: usize, line: u64 },
}

struct Mshr {
    line: u64,
    waiters: Vec<ReqId>,
    /// Whether any waiting request is a store (the filled line starts dirty).
    dirty: bool,
}

impl Mshr {
    /// The always-on half of the memory-pairing checker, extended to
    /// merged transactions: a request id must not be merged into a line it
    /// is already waiting on (that would be a double issue, and the client
    /// would later see a response for an id it no longer tracks). O(1) on
    /// the hot path — merges are FIFO, so a duplicate issued back-to-back
    /// is caught by the tail check; debug builds scan the whole list.
    fn check_merge(&self, id: ReqId) {
        assert!(
            self.waiters.last() != Some(&id),
            "memory pairing: request {id} double-issued into in-flight line {:#x}",
            self.line
        );
        debug_assert!(
            !self.waiters.contains(&id),
            "memory pairing: request {id} already waits on line {:#x}",
            self.line
        );
    }
}

struct L1Bank {
    array: CacheArray,
    /// In-flight fills, keyed by line. A bank has at most `mshrs_per_bank`
    /// (≤ 32) entries, so a linear scan beats hashing — and the fixed
    /// vector plus the waiter pool below make allocate/merge/fill
    /// allocation-free in steady state.
    mshrs: Vec<Mshr>,
    /// Recycled waiter vectors from completed fills.
    waiter_pool: Vec<Vec<ReqId>>,
    busy_until: u64,
}

impl L1Bank {
    fn mshr_mut(&mut self, line: u64) -> Option<&mut Mshr> {
        self.mshrs.iter_mut().find(|m| m.line == line)
    }
}

struct L1Port {
    config: L1Config,
    banks: Vec<L1Bank>,
}

struct L2Bank {
    array: CacheArray,
    busy_until: u64,
}

struct DramChannel {
    bus_busy_until: u64,
    bank_busy_until: Vec<u64>,
}

/// Reusable scratch for [`MemSystem::access_batch`]; allocation-free in
/// steady state.
#[derive(Default)]
struct BatchScratch {
    /// Per-request line index.
    lines: Vec<u64>,
    /// Per-request group index (into `group_lines`).
    group_of: Vec<u32>,
    /// Distinct lines in first-appearance order.
    group_lines: Vec<u64>,
    /// Open-addressed slot table for the grouping pass (`group + 1`;
    /// 0 = empty).
    table: Vec<u32>,
    /// Per-group memoized probe result for the coalesced replay.
    probe_memo: Vec<Option<Option<u32>>>,
}

/// Groups a batch's line addresses by value, preserving first-appearance
/// (FIFO) order. A radix-style single pass buckets each line by its low
/// bits into a power-of-two slot table (linear probing on collisions —
/// same-cycle lines are usually near-consecutive, so the low bits are
/// well spread). On return `group_lines` holds the distinct lines in the
/// order they first appeared and `group_of[i]` is request `i`'s index
/// into it; the distinct count is returned.
fn radix_group(
    lines: &[u64],
    group_of: &mut Vec<u32>,
    group_lines: &mut Vec<u64>,
    table: &mut Vec<u32>,
) -> usize {
    group_of.clear();
    group_lines.clear();
    let cap = (lines.len() * 2).next_power_of_two().max(8);
    table.clear();
    table.resize(cap, 0);
    let mask = cap - 1;
    for &line in lines {
        let mut slot = line as usize & mask;
        loop {
            match table[slot] {
                0 => {
                    let g = group_lines.len() as u32;
                    table[slot] = g + 1;
                    group_lines.push(line);
                    group_of.push(g);
                    break;
                }
                e if group_lines[(e - 1) as usize] == line => {
                    group_of.push(e - 1);
                    break;
                }
                _ => slot = (slot + 1) & mask,
            }
        }
    }
    group_lines.len()
}

/// The banked, cycle-stepped memory hierarchy.
///
/// ```
/// use vgiw_mem::{MemSystem, L1Config, SharedConfig};
///
/// let mut mem = MemSystem::new(vec![L1Config::vgiw_l1()], SharedConfig::fermi_like());
/// assert!(mem.access(0, 0x40, false, 7)); // load word address 0x40
/// let mut done = Vec::new();
/// while done.is_empty() {
///     mem.tick();
///     done.extend(mem.drain_responses());
/// }
/// assert_eq!(done, vec![7]);
/// ```
pub struct MemSystem {
    ports: Vec<L1Port>,
    l2: Vec<L2Bank>,
    l2_geom: CacheGeometry,
    shared: SharedConfig,
    dram: Vec<DramChannel>,
    now: u64,
    /// Near events, one slot per cycle of the next `EVENT_WHEEL` cycles.
    /// Slot buffers are drained in place and keep their capacity.
    wheel: Vec<Vec<Event>>,
    /// One bit per wheel slot with pending events, so the next-event query
    /// scans four words instead of 256 slot buffers.
    wheel_occ: [u64; EVENT_WHEEL / 64],
    wheel_count: usize,
    /// Events more than one wheel revolution ahead, ordered by
    /// `(time, sequence)`; dispatched directly when due (wheel first).
    far_events: BinaryHeap<Reverse<(u64, u64, Event)>>,
    event_seq: u64,
    responses: Vec<ReqId>,
    stats: MemStats,
    tracer: Tracer,
    /// Use the dense probe-first reference path (the equivalence oracle)
    /// instead of the merge-before-probe fast path.
    reference: bool,
    /// Accumulate wall-clock phase timings (pure observer).
    time_phases: bool,
    phases: MemPhases,
    scratch: BatchScratch,
    /// Deterministic wedge fault (see [`MemSystem::set_wedge_after`]):
    /// refuse every request once this many have been accepted. `None` in
    /// normal operation (zero cost on the intake hot path beyond one
    /// `Option` check).
    wedge_after: Option<u64>,
    /// Requests accepted since the wedge plan was installed.
    wedge_accepted: u64,
}

impl MemSystem {
    /// Creates a hierarchy with the given L1-level ports sharing one L2.
    ///
    /// # Panics
    /// Panics if `ports` is empty or a geometry is malformed.
    pub fn new(ports: Vec<L1Config>, shared: SharedConfig) -> MemSystem {
        assert!(!ports.is_empty(), "at least one L1 port is required");
        let mk_port = |config: &L1Config| {
            let sets = config.geometry.sets_per_bank();
            L1Port {
                config: *config,
                banks: (0..config.geometry.banks)
                    .map(|_| L1Bank {
                        array: CacheArray::new(sets, config.geometry.ways, config.geometry.banks),
                        mshrs: Vec::with_capacity(config.mshrs_per_bank as usize),
                        waiter_pool: Vec::new(),
                        busy_until: 0,
                    })
                    .collect(),
            }
        };
        let l2_sets = shared.l2_geometry.sets_per_bank();
        MemSystem {
            ports: ports.iter().map(mk_port).collect(),
            l2: (0..shared.l2_geometry.banks)
                .map(|_| L2Bank {
                    array: CacheArray::new(
                        l2_sets,
                        shared.l2_geometry.ways,
                        shared.l2_geometry.banks,
                    ),
                    busy_until: 0,
                })
                .collect(),
            l2_geom: shared.l2_geometry,
            shared,
            dram: (0..shared.dram_channels)
                .map(|_| DramChannel {
                    bus_busy_until: 0,
                    bank_busy_until: vec![0; shared.dram_banks_per_channel as usize],
                })
                .collect(),
            now: 0,
            wheel: (0..EVENT_WHEEL).map(|_| Vec::new()).collect(),
            wheel_occ: [0; EVENT_WHEEL / 64],
            wheel_count: 0,
            far_events: BinaryHeap::new(),
            event_seq: 0,
            responses: Vec::new(),
            stats: MemStats::new(ports.len()),
            tracer: Tracer::off(),
            reference: false,
            time_phases: false,
            phases: MemPhases::default(),
            scratch: BatchScratch::default(),
            wedge_after: None,
            wedge_accepted: 0,
        }
    }

    /// Installs a tracer; fills and writebacks at the L1-level ports emit
    /// [`vgiw_trace::TraceEvent::CacheFill`] /
    /// [`vgiw_trace::TraceEvent::CacheWriteback`] into it. Pure observer.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Forces the dense probe-first reference path (the equivalence
    /// oracle) instead of the merge-before-probe fast path. Everything
    /// observable — acceptance, response order and timing, statistics —
    /// is bit-identical either way.
    pub fn set_reference(&mut self, reference: bool) {
        self.reference = reference;
    }

    /// Enables wall-clock phase accounting (see [`MemSystem::phases`]).
    /// Pure observer: simulated behaviour is unaffected.
    pub fn set_time_phases(&mut self, on: bool) {
        self.time_phases = on;
    }

    /// Accumulated host-side phase timings (all zero unless
    /// [`MemSystem::set_time_phases`] enabled them).
    pub fn phases(&self) -> &MemPhases {
        &self.phases
    }

    /// Current core cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    #[inline]
    fn clock(&self) -> Option<Instant> {
        self.time_phases.then(Instant::now)
    }

    #[inline]
    fn elapsed(since: Option<Instant>) -> u64 {
        since.map_or(0, |t| t.elapsed().as_nanos() as u64)
    }

    fn schedule(&mut self, time: u64, event: Event) {
        let t = time.max(self.now + 1);
        if t - self.now < EVENT_WHEEL as u64 {
            let slot = (t & EVENT_WHEEL_MASK) as usize;
            self.wheel[slot].push(event);
            self.wheel_occ[slot >> 6] |= 1 << (slot & 63);
            self.wheel_count += 1;
        } else {
            self.event_seq += 1;
            self.far_events.push(Reverse((t, self.event_seq, event)));
        }
    }

    /// Attempts to issue a memory access on `port` for the 32-bit word at
    /// word address `addr_words`. Returns `false` if the target bank cannot
    /// accept the request this cycle (backlogged port or exhausted MSHRs);
    /// the caller should retry on a later cycle.
    ///
    /// On acceptance, `id` will eventually appear in
    /// [`MemSystem::drain_responses`] (or be pushed into the
    /// [`ResponseSink`] of [`MemSystem::tick_deliver`]) — for stores too
    /// (VGIW store completions feed join-token ordering).
    pub fn access(&mut self, port: PortId, addr_words: u32, is_store: bool, id: ReqId) -> bool {
        if let Some(after) = self.wedge_after {
            if self.wedge_accepted >= after {
                return false;
            }
        }
        let t0 = self.clock();
        let accepted = if self.reference {
            self.access_reference(port, addr_words, is_store, id)
        } else {
            self.access_fast(port, addr_words, is_store, id, None)
        };
        self.phases.intake_ns += Self::elapsed(t0);
        if accepted && self.wedge_after.is_some() {
            self.wedge_accepted += 1;
        }
        accepted
    }

    /// Submits one cycle's requests for `port` as a slice, in issue order.
    /// Returns how many of the leading requests were accepted; the first
    /// rejection (backlogged bank or exhausted MSHRs) stops intake, so the
    /// caller retries `reqs[accepted..]` on a later cycle. Semantically
    /// identical to calling [`MemSystem::access`] per request and stopping
    /// at the first `false`.
    ///
    /// The batch is first grouped by line address with a small radix pass
    /// (feeding the `<m>.mem.batch_*` coalescing counters on every path);
    /// when the batch actually coalesces — at least `COALESCE_MIN_BATCH`
    /// requests and fewer distinct lines than requests, checked in O(1) —
    /// the fast replay merges same-line accesses into one MSHR transaction
    /// *before* tag lookup and memoizes one probe per distinct line, so N
    /// same-line loads cost one tag scan. Low-coalescing batches (and the
    /// `reference_mem` oracle) take the direct per-request loop.
    pub fn access_batch(&mut self, port: PortId, reqs: &[BatchReq]) -> usize {
        if reqs.is_empty() {
            return 0;
        }
        if self.wedge_after.is_some() {
            // Wedge faults are rare (chaos campaigns only); fall back to
            // the per-request path so each acceptance is gated
            // individually. Batch coalescing stats are not recorded while
            // a wedge plan is armed.
            for (i, r) in reqs.iter().enumerate() {
                if !self.access(port, r.addr_words, r.is_store, r.id) {
                    return i;
                }
            }
            return reqs.len();
        }
        let t0 = self.clock();
        let geom = self.ports[port].config.geometry;
        let mut lines = std::mem::take(&mut self.scratch.lines);
        let mut group_of = std::mem::take(&mut self.scratch.group_of);
        let mut group_lines = std::mem::take(&mut self.scratch.group_lines);
        let mut table = std::mem::take(&mut self.scratch.table);
        lines.clear();
        lines.extend(reqs.iter().map(|r| geom.line_of(r.addr_words as u64 * 4)));
        let distinct = radix_group(&lines, &mut group_of, &mut group_lines, &mut table);
        self.stats.batch.record(reqs.len() as u64, distinct as u64);

        // O(1) coalescing gate: only a batch that actually shares lines
        // can amortize the per-group memoization.
        let coalesces =
            !self.reference && reqs.len() >= COALESCE_MIN_BATCH && distinct < reqs.len();
        let accepted = if coalesces {
            let mut memo = std::mem::take(&mut self.scratch.probe_memo);
            memo.clear();
            memo.resize(distinct, None);
            let mut n = reqs.len();
            for (i, r) in reqs.iter().enumerate() {
                let group = group_of[i] as usize;
                if !self.access_fast(
                    port,
                    r.addr_words,
                    r.is_store,
                    r.id,
                    Some((&mut memo, group)),
                ) {
                    n = i;
                    break;
                }
            }
            self.scratch.probe_memo = memo;
            n
        } else {
            let mut n = reqs.len();
            for (i, r) in reqs.iter().enumerate() {
                let ok = if self.reference {
                    self.access_reference(port, r.addr_words, r.is_store, r.id)
                } else {
                    self.access_fast(port, r.addr_words, r.is_store, r.id, None)
                };
                if !ok {
                    n = i;
                    break;
                }
            }
            n
        };
        self.scratch.lines = lines;
        self.scratch.group_of = group_of;
        self.scratch.group_lines = group_lines;
        self.scratch.table = table;
        self.phases.intake_ns += Self::elapsed(t0);
        accepted
    }

    /// The merge-before-probe fast path. `memo` (batch replay only) is the
    /// per-group probe cache: the L1 presence of a line cannot change
    /// during intake (fills happen only in tick dispatch), so one probe
    /// result serves every same-line request of the batch — a primary miss
    /// allocates an MSHR, which catches the batch's later same-line
    /// requests through the live MSHR-first check before the memo is ever
    /// consulted again for an allocating request.
    fn access_fast(
        &mut self,
        port: PortId,
        addr_words: u32,
        is_store: bool,
        id: ReqId,
        memo: Option<(&mut Vec<Option<Option<u32>>>, usize)>,
    ) -> bool {
        let byte_addr = (addr_words as u64) * 4;
        let config = self.ports[port].config;
        let line = config.geometry.line_of(byte_addr);
        let bank_idx = config.geometry.bank_of(line) as usize;
        let now = self.now;
        let timing = self.time_phases;
        let bank = &mut self.ports[port].banks[bank_idx];
        let allocates = !is_store || config.alloc_policy == AllocPolicy::WriteAllocate;

        // MSHR merge *before* the tag scan: an MSHR for `line` can only
        // exist while the line is absent from the array (allocated on a
        // probe miss; popped by the fill before the line is installed), so
        // an MSHR hit proves the probe would miss — the scan is skipped.
        // Merges need no port slot either (the primary miss did the tag
        // lookup), so a backlogged bank must not reject them.
        if allocates && bank.mshr_mut(line).is_some() {
            debug_assert!(
                !bank.array.probe(line),
                "line {line:#x} both resident and in flight"
            );
            {
                let mshr = bank.mshr_mut(line).expect("just found");
                mshr.check_merge(id);
                mshr.waiters.push(id);
                mshr.dirty |= is_store;
                self.stats.port[port].accesses += 1;
                self.stats.port[port].mshr_merges += 1;
                if is_store {
                    self.stats.port[port].stores += 1;
                }
                return true;
            }
        }

        let tp = timing.then(Instant::now);
        let hit_way = match memo {
            Some((memo, group)) => match memo[group] {
                Some(hw) => hw,
                None => {
                    let hw = bank.array.probe_way_hinted(line);
                    memo[group] = Some(hw);
                    hw
                }
            },
            None => bank.array.probe_way_hinted(line),
        };
        self.phases.probe_ns += Self::elapsed(tp);
        let hit = hit_way.is_some();

        // Port backlog check.
        if bank.busy_until > now + config.queue_depth {
            self.stats.port[port].rejects += 1;
            return false;
        }
        if !hit && allocates && bank.mshrs.len() >= config.mshrs_per_bank as usize {
            self.stats.port[port].rejects += 1;
            return false;
        }

        // Occupy the bank port for one cycle.
        let t0 = bank.busy_until.max(now);
        if t0 > now {
            self.stats.port[port].bank_conflicts += 1;
        }
        bank.busy_until = t0 + 1;
        self.stats.port[port].accesses += 1;
        if is_store {
            self.stats.port[port].stores += 1;
        }

        if let Some(way) = hit_way {
            let mark_dirty = is_store && config.write_policy == WritePolicy::WriteBack;
            self.ports[port].banks[bank_idx]
                .array
                .touch_way(line, way, mark_dirty);
            self.stats.port[port].hits += 1;
            if is_store && config.write_policy == WritePolicy::WriteThrough {
                // Write-through traffic into L2 (fire and forget).
                self.l2_access(port, line, true, t0);
            }
            self.schedule(t0 + config.hit_latency, Event::Respond(id));
            return true;
        }

        self.stats.port[port].misses += 1;
        if !allocates {
            // Write-no-allocate store miss: forward to L2, ack immediately
            // (write buffer semantics).
            self.l2_access(port, line, true, t0);
            self.schedule(t0 + 1, Event::Respond(id));
            return true;
        }

        // Primary miss: allocate an MSHR and fetch the line from L2.
        let bank = &mut self.ports[port].banks[bank_idx];
        let mut waiters = bank.waiter_pool.pop().unwrap_or_default();
        waiters.push(id);
        bank.mshrs.push(Mshr {
            line,
            waiters,
            dirty: is_store,
        });
        let fill_time = self.l2_access(port, line, false, t0);
        self.schedule(fill_time, Event::FillL1 { port, line });
        true
    }

    /// The dense probe-first reference path: the original per-request
    /// interpreter, byte-for-byte the pre-fast-path control flow (probe,
    /// then MSHR merge, then backlog/capacity, then hit/miss), kept as
    /// the oracle the fast path is equivalence-tested against.
    fn access_reference(
        &mut self,
        port: PortId,
        addr_words: u32,
        is_store: bool,
        id: ReqId,
    ) -> bool {
        let byte_addr = (addr_words as u64) * 4;
        let geom = self.ports[port].config.geometry;
        let line = geom.line_of(byte_addr);
        let bank_idx = geom.bank_of(line) as usize;
        let config = self.ports[port].config;
        let now = self.now;
        let timing = self.time_phases;

        let bank = &mut self.ports[port].banks[bank_idx];
        let tp = timing.then(Instant::now);
        let hit_way = bank.array.probe_way(line);
        self.phases.probe_ns += Self::elapsed(tp);
        let hit = hit_way.is_some();
        let allocates = !is_store || config.alloc_policy == AllocPolicy::WriteAllocate;
        if !hit && allocates {
            // MSHR merge first: a secondary miss to an in-flight line needs
            // no port slot (the tag lookup already happened for the primary
            // miss), so a backlogged bank must not reject it.
            if let Some(mshr) = bank.mshr_mut(line) {
                mshr.check_merge(id);
                mshr.waiters.push(id);
                mshr.dirty |= is_store;
                self.stats.port[port].accesses += 1;
                self.stats.port[port].mshr_merges += 1;
                if is_store {
                    self.stats.port[port].stores += 1;
                }
                return true;
            }
        }

        // Port backlog check.
        if bank.busy_until > now + config.queue_depth {
            self.stats.port[port].rejects += 1;
            return false;
        }
        if !hit && allocates && bank.mshrs.len() >= config.mshrs_per_bank as usize {
            self.stats.port[port].rejects += 1;
            return false;
        }

        // Occupy the bank port for one cycle.
        let t0 = bank.busy_until.max(now);
        if t0 > now {
            self.stats.port[port].bank_conflicts += 1;
        }
        bank.busy_until = t0 + 1;
        self.stats.port[port].accesses += 1;
        if is_store {
            self.stats.port[port].stores += 1;
        }

        if let Some(way) = hit_way {
            let mark_dirty = is_store && config.write_policy == WritePolicy::WriteBack;
            self.ports[port].banks[bank_idx]
                .array
                .touch_way(line, way, mark_dirty);
            self.stats.port[port].hits += 1;
            if is_store && config.write_policy == WritePolicy::WriteThrough {
                // Write-through traffic into L2 (fire and forget).
                self.l2_access(port, line, true, t0);
            }
            self.schedule(t0 + config.hit_latency, Event::Respond(id));
            return true;
        }

        self.stats.port[port].misses += 1;
        if !allocates {
            // Write-no-allocate store miss: forward to L2, ack immediately
            // (write buffer semantics).
            self.l2_access(port, line, true, t0);
            self.schedule(t0 + 1, Event::Respond(id));
            return true;
        }

        // Primary miss: allocate an MSHR and fetch the line from L2.
        let bank = &mut self.ports[port].banks[bank_idx];
        let mut waiters = bank.waiter_pool.pop().unwrap_or_default();
        waiters.push(id);
        bank.mshrs.push(Mshr {
            line,
            waiters,
            dirty: is_store,
        });
        let fill_time = self.l2_access(port, line, false, t0);
        self.schedule(fill_time, Event::FillL1 { port, line });
        true
    }

    /// Timing of an L2 access for `line` (L1-line granularity is converted
    /// to L2-line granularity internally). Returns the completion time.
    fn l2_access(&mut self, port: usize, l1_line: u64, is_store: bool, t: u64) -> u64 {
        // Convert: l1_line index is in units of the issuing port's line size.
        let byte = l1_line * self.ports[port].config.geometry.line_bytes as u64;
        let line = self.l2_geom.line_of(byte);
        let bank_idx = self.l2_geom.bank_of(line) as usize;
        let ratio = self.shared.l2_cycle_ratio;
        let bank = &mut self.l2[bank_idx];
        let t1 = bank.busy_until.max(t);
        if t1 > t {
            self.stats.l2.bank_conflicts += 1;
        }
        bank.busy_until = t1 + ratio;
        self.stats.l2.accesses += 1;
        if is_store {
            self.stats.l2.stores += 1;
        }

        let hit = bank.array.access(line, is_store);
        if hit {
            self.stats.l2.hits += 1;
            return t1 + self.shared.l2_hit_latency;
        }
        self.stats.l2.misses += 1;
        // A miss always *fetches* the line (a store miss installs it dirty;
        // the eventual eviction writes it back — charging a DRAM write here
        // too would double-count the traffic).
        let done = self.dram_access(line, t1, false);
        // Install into L2 now (timing-approximate: tags update early, the
        // returned completion time carries the real latency).
        let evicted = self.l2[bank_idx].array.fill(line, is_store);
        if let Some(ev) = evicted {
            if ev.dirty {
                self.dram_access(ev.line, done, true);
            }
        }
        done + self.shared.l2_hit_latency
    }

    fn dram_access(&mut self, l2_line: u64, t: u64, is_store: bool) -> u64 {
        let chan_idx = (l2_line % self.shared.dram_channels as u64) as usize;
        let bank_idx = ((l2_line / self.shared.dram_channels as u64)
            % self.shared.dram_banks_per_channel as u64) as usize;
        if is_store {
            self.stats.dram.writes += 1;
        } else {
            self.stats.dram.reads += 1;
        }
        let chan = &mut self.dram[chan_idx];
        let start = t
            .max(chan.bus_busy_until)
            .max(chan.bank_busy_until[bank_idx]);
        chan.bus_busy_until = start + self.shared.dram_channel_occupancy;
        chan.bank_busy_until[bank_idx] = start + self.shared.dram_bank_occupancy;
        start + self.shared.dram_latency
    }

    /// Advances the hierarchy by one core cycle, completing due events
    /// (wheel slot first, then due overflow events, each in schedule
    /// order); completed requests queue for [`MemSystem::drain_responses`].
    pub fn tick(&mut self) {
        self.tick_impl(None);
    }

    /// Advances the hierarchy by one core cycle, delivering completed
    /// requests straight into `sink` as [`Delivery`] descriptors instead
    /// of queueing them — the zero-copy path: the client writes each
    /// completion directly into its own buffers, skipping the response
    /// queue round-trip (and its per-cycle drain/copy). Delivery order is
    /// identical to what [`MemSystem::drain_responses`] would return for
    /// the same cycle. The sink must not call back into this `MemSystem`.
    pub fn tick_deliver(&mut self, sink: &mut dyn ResponseSink) {
        self.tick_impl(Some(sink));
    }

    fn tick_impl(&mut self, mut sink: Option<&mut dyn ResponseSink>) {
        let t0 = self.clock();
        self.now += 1;
        let mut seq = 0u32;
        let slot = (self.now & EVENT_WHEEL_MASK) as usize;
        if !self.wheel[slot].is_empty() {
            // Drain in place and hand the buffer back: dispatching can only
            // schedule *future* events (distance ≥ 1), never into this slot.
            let mut due = std::mem::take(&mut self.wheel[slot]);
            self.wheel_occ[slot >> 6] &= !(1 << (slot & 63));
            self.wheel_count -= due.len();
            for &event in due.iter() {
                self.dispatch(event, &mut sink, &mut seq);
            }
            due.clear();
            debug_assert!(self.wheel[slot].is_empty());
            self.wheel[slot] = due;
        }
        while let Some(&Reverse((t, _, event))) = self.far_events.peek() {
            if t > self.now {
                break;
            }
            self.far_events.pop();
            self.dispatch(event, &mut sink, &mut seq);
        }
        self.phases.deliver_ns += Self::elapsed(t0);
    }

    fn dispatch(&mut self, event: Event, sink: &mut Option<&mut dyn ResponseSink>, seq: &mut u32) {
        match event {
            Event::Respond(id) => match sink.as_deref_mut() {
                Some(s) => {
                    s.deliver(Delivery {
                        id,
                        cycle: self.now,
                        seq: *seq,
                    });
                    *seq += 1;
                }
                None => self.responses.push(id),
            },
            Event::FillL1 { port, line } => self.fill_l1(port, line),
        }
    }

    /// Absolute cycle of the earliest pending event, if any. Lets a client
    /// that is otherwise idle fast-forward to just before the next
    /// completion instead of ticking through dead cycles. O(1): a short
    /// word scan over the wheel occupancy bitmap plus a heap peek.
    pub fn next_event_cycle(&self) -> Option<u64> {
        let far = self.far_events.peek().map(|&Reverse((t, _, _))| t);
        let near = if self.wheel_count == 0 {
            None
        } else {
            let start = ((self.now + 1) & EVENT_WHEEL_MASK) as usize;
            let nw = self.wheel_occ.len();
            let sw = start >> 6;
            let mut found = None;
            let first = self.wheel_occ[sw] & (!0u64 << (start & 63));
            if first != 0 {
                found = Some((sw << 6) + first.trailing_zeros() as usize);
            } else {
                for i in 1..=nw {
                    let w = (sw + i) & (nw - 1);
                    if self.wheel_occ[w] != 0 {
                        found = Some((w << 6) + self.wheel_occ[w].trailing_zeros() as usize);
                        break;
                    }
                }
            }
            found.map(|slot| {
                let dist = (slot.wrapping_sub(start) as u64) & EVENT_WHEEL_MASK;
                self.now + 1 + dist
            })
        };
        match (near, far) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, None) => a,
            (None, b) => b,
        }
    }

    /// Jumps the clock forward `k` cycles in one step. The caller must
    /// guarantee no event falls in the skipped range (see
    /// [`MemSystem::next_event_cycle`]) and that completed responses have
    /// been drained; idle cycles carry no other state.
    pub fn advance_idle(&mut self, k: u64) {
        debug_assert!(
            self.responses.is_empty(),
            "fast-forwarding undrained responses"
        );
        debug_assert!(
            self.next_event_cycle().is_none_or(|t| t > self.now + k),
            "fast-forward would skip over a scheduled event"
        );
        self.now += k;
    }

    fn fill_l1(&mut self, port: usize, line: u64) {
        let t0 = self.clock();
        let geom = self.ports[port].config.geometry;
        let bank_idx = geom.bank_of(line) as usize;
        let hit_lat = self.ports[port].config.hit_latency;
        let bank = &mut self.ports[port].banks[bank_idx];
        let (mut waiters, dirty) = match bank.mshrs.iter().position(|m| m.line == line) {
            Some(i) => {
                let m = bank.mshrs.swap_remove(i);
                (m.waiters, m.dirty)
            }
            None => (Vec::new(), false),
        };
        let evicted = bank.array.fill(line, dirty);
        self.stats.port[port].fills += 1;
        self.tracer.emit(self.now, || TraceEvent::CacheFill {
            port: port as u8,
            line,
        });
        if let Some(ev) = evicted {
            if ev.dirty {
                self.stats.port[port].writebacks += 1;
                self.tracer.emit(self.now, || TraceEvent::CacheWriteback {
                    port: port as u8,
                    line: ev.line,
                });
                let t = self.now;
                self.l2_access(port, ev.line, true, t);
            }
        }
        let respond_at = self.now + hit_lat;
        for &id in &waiters {
            self.schedule(respond_at, Event::Respond(id));
        }
        waiters.clear();
        self.ports[port].banks[bank_idx].waiter_pool.push(waiters);
        self.phases.fill_ns += Self::elapsed(t0);
    }

    /// Returns (and clears) the requests completed since the last call.
    pub fn drain_responses(&mut self) -> Vec<ReqId> {
        std::mem::take(&mut self.responses)
    }

    /// Appends the requests completed since the last drain to `out`,
    /// recycling the caller's buffer instead of allocating per cycle.
    pub fn drain_responses_into(&mut self, out: &mut Vec<ReqId>) {
        out.append(&mut self.responses);
    }

    /// Whether any request is still in flight.
    pub fn is_idle(&self) -> bool {
        self.wheel_count == 0 && self.far_events.is_empty() && self.responses.is_empty()
    }

    /// Snapshots every outstanding MSHR entry (for deadlock reports: a
    /// fill that never completes shows up here as a stuck line with its
    /// waiting request IDs).
    pub fn mshr_snapshot(&self) -> Vec<MshrSnapshot> {
        let mut out = Vec::new();
        for (pi, port) in self.ports.iter().enumerate() {
            for (bi, bank) in port.banks.iter().enumerate() {
                for m in &bank.mshrs {
                    out.push(MshrSnapshot {
                        port: pi,
                        bank: bi,
                        line: m.line,
                        waiters: m.waiters.len(),
                        dirty: m.dirty,
                    });
                }
            }
        }
        out
    }

    /// Number of scheduled timing events still in flight (fills, DRAM
    /// completions, pending responses).
    pub fn in_flight_events(&self) -> usize {
        self.wheel_count + self.far_events.len() + self.responses.len()
    }

    /// Installs (or clears) a deterministic *wedge* fault: once `n` more
    /// requests have been accepted, every subsequent intake through
    /// [`MemSystem::access`] / [`MemSystem::access_batch`] is refused,
    /// starving the client until its watchdog fires. This is the
    /// machine-level analogue of the fabric `FaultyEnv` stall fault, used
    /// by the chaos campaign to exercise deadlock detection and
    /// checkpoint recovery on every machine. Resets the acceptance count.
    pub fn set_wedge_after(&mut self, n: Option<u64>) {
        self.wedge_after = n;
        self.wedge_accepted = 0;
    }

    /// Writes the complete dynamic state — clock, pending timing events,
    /// undrained responses, cache arrays, MSHRs, busy-until occupancy,
    /// fault-plan progress and statistics — as one snapshot section named
    /// `name`. Configuration and pure observers (tracer, phase timings,
    /// scratch/pool buffers) are not serialized: restore targets a
    /// `MemSystem` built with the same configuration. Byte-deterministic
    /// for a given state (wheel events are written in temporal order,
    /// overflow-heap events in `(time, seq)` order).
    pub fn save_state(&self, w: &mut SnapshotWriter, name: &str) {
        w.section(name);
        w.u64("now", self.now);
        w.u64("event_seq", self.event_seq);
        w.u64_list(
            "wedge",
            &[
                self.wedge_after.is_some() as u64,
                self.wedge_after.unwrap_or(0),
                self.wedge_accepted,
            ],
        );
        w.u64_list("responses", &self.responses);

        // Wheel events in temporal order, with absolute times recovered
        // from slot positions: every wheel event lies in
        // `(now, now + EVENT_WHEEL)`, so slot `(now + d) & MASK` holds
        // exactly the events due at `now + d`.
        let mut near = Vec::with_capacity(self.wheel_count * 4);
        for d in 1..EVENT_WHEEL as u64 {
            let t = self.now + d;
            for &ev in &self.wheel[(t & EVENT_WHEEL_MASK) as usize] {
                let (kind, a, b) = encode_event(ev);
                near.extend_from_slice(&[t, kind, a, b]);
            }
        }
        debug_assert_eq!(near.len(), self.wheel_count * 4);
        w.u64_list("wheel", &near);

        // Overflow events carry their heap key verbatim; sorted so the
        // serialization is canonical regardless of heap layout.
        let mut far: Vec<(u64, u64, Event)> = self.far_events.iter().map(|&Reverse(e)| e).collect();
        far.sort_unstable();
        let mut far_words = Vec::with_capacity(far.len() * 5);
        for (t, seq, ev) in far {
            let (kind, a, b) = encode_event(ev);
            far_words.extend_from_slice(&[t, seq, kind, a, b]);
        }
        w.u64_list("far", &far_words);

        w.u64("ports", self.ports.len() as u64);
        for port in &self.ports {
            w.section("port");
            w.u64("banks", port.banks.len() as u64);
            for bank in &port.banks {
                w.section("bank");
                bank.array.save(w, "array");
                w.u64("busy_until", bank.busy_until);
                w.u64("mshrs", bank.mshrs.len() as u64);
                for m in &bank.mshrs {
                    let mut rec = Vec::with_capacity(m.waiters.len() + 2);
                    rec.push(m.line);
                    rec.push(m.dirty as u64);
                    rec.extend_from_slice(&m.waiters);
                    w.u64_list("mshr", &rec);
                }
                w.end_section();
            }
            w.end_section();
        }

        w.u64("l2_banks", self.l2.len() as u64);
        for bank in &self.l2 {
            w.section("l2_bank");
            bank.array.save(w, "array");
            w.u64("busy_until", bank.busy_until);
            w.end_section();
        }

        w.u64("dram_channels", self.dram.len() as u64);
        for chan in &self.dram {
            let mut rec = Vec::with_capacity(chan.bank_busy_until.len() + 1);
            rec.push(chan.bus_busy_until);
            rec.extend_from_slice(&chan.bank_busy_until);
            w.u64_list("dram_channel", &rec);
        }

        self.stats.save(w, "stats");
        w.end_section();
    }

    /// Restores state written by [`MemSystem::save_state`] into a
    /// hierarchy built with the same configuration (port/bank/channel
    /// geometry is validated). All dynamic state is replaced; subsequent
    /// behaviour is bit-identical to the saved instance's.
    ///
    /// # Errors
    /// Fails on a malformed section or a geometry mismatch; the hierarchy
    /// may be left partially restored and must not be reused after an
    /// error.
    pub fn restore_state(
        &mut self,
        r: &mut SnapshotReader<'_>,
        name: &str,
    ) -> Result<(), SnapshotError> {
        fn corrupt(detail: &str) -> SnapshotError {
            SnapshotError::Corrupt {
                detail: detail.to_string(),
            }
        }
        fn check_count(what: &str, found: u64, expected: usize) -> Result<(), SnapshotError> {
            if found != expected as u64 {
                return Err(SnapshotError::Incompatible {
                    detail: format!("{what}: snapshot has {found}, this config has {expected}"),
                });
            }
            Ok(())
        }

        r.section(name)?;
        let now = r.u64("now")?;
        let event_seq = r.u64("event_seq")?;
        let wedge = r.u64_list("wedge")?;
        if wedge.len() != 3 {
            return Err(corrupt("wedge record must have 3 words"));
        }
        let responses = r.u64_list("responses")?;
        let near = r.u64_list("wheel")?;
        if near.len() % 4 != 0 {
            return Err(corrupt("wheel event list must be a multiple of 4 words"));
        }
        let far = r.u64_list("far")?;
        if far.len() % 5 != 0 {
            return Err(corrupt("far event list must be a multiple of 5 words"));
        }

        // Reset every event container, then rebuild at the restored clock.
        self.now = now;
        self.event_seq = 0;
        for slot in &mut self.wheel {
            slot.clear();
        }
        self.wheel_occ = [0; EVENT_WHEEL / 64];
        self.wheel_count = 0;
        self.far_events.clear();
        self.responses = responses;
        for chunk in near.chunks_exact(4) {
            let t = chunk[0];
            if t <= now || t - now >= EVENT_WHEEL as u64 {
                return Err(corrupt("wheel event time outside wheel horizon"));
            }
            let ev = decode_event(chunk[1], chunk[2], chunk[3])?;
            self.schedule(t, ev);
        }
        for chunk in far.chunks_exact(5) {
            let ev = decode_event(chunk[2], chunk[3], chunk[4])?;
            self.far_events.push(Reverse((chunk[0], chunk[1], ev)));
        }
        self.event_seq = event_seq;
        self.wedge_after = (wedge[0] != 0).then_some(wedge[1]);
        self.wedge_accepted = wedge[2];

        check_count("L1 ports", r.u64("ports")?, self.ports.len())?;
        for port in &mut self.ports {
            r.section("port")?;
            check_count("L1 banks", r.u64("banks")?, port.banks.len())?;
            for bank in &mut port.banks {
                r.section("bank")?;
                bank.array.restore(r, "array")?;
                bank.busy_until = r.u64("busy_until")?;
                let n_mshrs = r.u64("mshrs")? as usize;
                // Recycle existing waiter vectors through the pool.
                for mut m in bank.mshrs.drain(..) {
                    m.waiters.clear();
                    bank.waiter_pool.push(m.waiters);
                }
                for _ in 0..n_mshrs {
                    let rec = r.u64_list("mshr")?;
                    if rec.len() < 2 {
                        return Err(corrupt("mshr record must have at least 2 words"));
                    }
                    let mut waiters = bank.waiter_pool.pop().unwrap_or_default();
                    waiters.extend_from_slice(&rec[2..]);
                    bank.mshrs.push(Mshr {
                        line: rec[0],
                        waiters,
                        dirty: rec[1] != 0,
                    });
                }
                r.end_section()?;
            }
            r.end_section()?;
        }

        check_count("L2 banks", r.u64("l2_banks")?, self.l2.len())?;
        for bank in &mut self.l2 {
            r.section("l2_bank")?;
            bank.array.restore(r, "array")?;
            bank.busy_until = r.u64("busy_until")?;
            r.end_section()?;
        }

        check_count("DRAM channels", r.u64("dram_channels")?, self.dram.len())?;
        for chan in &mut self.dram {
            let rec = r.u64_list("dram_channel")?;
            check_count(
                "DRAM banks",
                rec.len() as u64,
                chan.bank_busy_until.len() + 1,
            )?;
            chan.bus_busy_until = rec[0];
            chan.bank_busy_until.copy_from_slice(&rec[1..]);
        }

        self.stats = MemStats::restore(r, "stats", self.ports.len())?;
        r.end_section()?;
        Ok(())
    }
}

/// Packs a timing event as `(kind, a, b)` words for serialization.
fn encode_event(ev: Event) -> (u64, u64, u64) {
    match ev {
        Event::Respond(id) => (0, id, 0),
        Event::FillL1 { port, line } => (1, port as u64, line),
    }
}

/// Inverse of [`encode_event`].
fn decode_event(kind: u64, a: u64, b: u64) -> Result<Event, SnapshotError> {
    match kind {
        0 => Ok(Event::Respond(a)),
        1 => Ok(Event::FillL1 {
            port: a as usize,
            line: b,
        }),
        other => Err(SnapshotError::Corrupt {
            detail: format!("unknown event kind {other}"),
        }),
    }
}

/// One outstanding MSHR entry, as reported by [`MemSystem::mshr_snapshot`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MshrSnapshot {
    /// L1-level port index (0 = data L1; 1 = LVC when configured).
    pub port: usize,
    /// Bank index within the port.
    pub bank: usize,
    /// The line address being filled.
    pub line: u64,
    /// Requests waiting on the fill.
    pub waiters: usize,
    /// Whether the filled line will start dirty.
    pub dirty: bool,
}

impl std::fmt::Debug for MemSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MemSystem {{ ports: {}, cycle: {}, in_flight: {} }}",
            self.ports.len(),
            self.now,
            self.wheel_count + self.far_events.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_until_idle(mem: &mut MemSystem, limit: u64) -> Vec<ReqId> {
        let mut done = Vec::new();
        for _ in 0..limit {
            mem.tick();
            done.extend(mem.drain_responses());
            if mem.is_idle() {
                break;
            }
        }
        done
    }

    fn sys() -> MemSystem {
        MemSystem::new(vec![L1Config::vgiw_l1()], SharedConfig::fermi_like())
    }

    #[test]
    fn cold_miss_then_hit_latency_ordering() {
        let mut mem = sys();
        assert!(mem.access(0, 0, false, 1));
        let done = run_until_idle(&mut mem, 10_000);
        assert_eq!(done, vec![1]);
        let miss_time = mem.now();
        assert!(
            miss_time > 100,
            "cold miss should reach DRAM (took {miss_time})"
        );

        // Same line again: must now be an L1 hit, far faster.
        assert!(mem.access(0, 1, false, 2));
        let before = mem.now();
        let done = run_until_idle(&mut mem, 10_000);
        assert_eq!(done, vec![2]);
        let hit_cycles = mem.now() - before;
        assert!(hit_cycles <= 8, "hit should be fast, took {hit_cycles}");
        assert_eq!(mem.stats().port[0].hits, 1);
        assert_eq!(mem.stats().port[0].misses, 1);
    }

    #[test]
    fn mshr_merges_share_one_fill() {
        let mut mem = sys();
        assert!(mem.access(0, 0, false, 1));
        assert!(mem.access(0, 1, false, 2)); // same 128B line -> merge
        assert!(mem.access(0, 2, false, 3));
        let mut done = run_until_idle(&mut mem, 10_000);
        done.sort_unstable();
        assert_eq!(done, vec![1, 2, 3]);
        assert_eq!(mem.stats().port[0].misses, 1);
        assert_eq!(mem.stats().port[0].mshr_merges, 2);
        assert_eq!(mem.stats().dram.reads, 1);
    }

    #[test]
    fn mshr_capacity_rejects() {
        let mut mem = sys();
        // Distinct lines mapping to the same bank: stride = banks*line =
        // 32*128 bytes = 1024 words.
        let mut accepted = 0;
        for i in 0..20u32 {
            if mem.access(0, i * 1024, false, i as u64) {
                accepted += 1;
            }
        }
        assert!(accepted >= 8, "MSHRs should allow at least 8");
        assert!(accepted < 20, "MSHR capacity should reject some");
        assert!(mem.stats().port[0].rejects > 0);
    }

    #[test]
    fn writeback_vs_writethrough_l2_traffic() {
        // Repeated stores to one line: WB keeps them local, WT forwards all.
        let mut wb = sys();
        for i in 0..16u32 {
            assert!(wb.access(0, 0, true, i as u64));
            run_until_idle(&mut wb, 10_000);
        }
        let wb_l2 = wb.stats().l2.accesses;

        let mut wt = MemSystem::new(vec![L1Config::fermi_l1()], SharedConfig::fermi_like());
        for i in 0..16u32 {
            assert!(wt.access(0, 0, true, i as u64));
            run_until_idle(&mut wt, 10_000);
        }
        let wt_l2 = wt.stats().l2.accesses;
        assert!(
            wt_l2 > wb_l2,
            "write-through should produce more L2 traffic ({wt_l2} vs {wb_l2})"
        );
    }

    #[test]
    fn write_no_allocate_store_miss_bypasses() {
        let mut mem = MemSystem::new(vec![L1Config::fermi_l1()], SharedConfig::fermi_like());
        assert!(mem.access(0, 0, true, 1));
        let done = run_until_idle(&mut mem, 10_000);
        assert_eq!(done, vec![1]);
        assert_eq!(mem.stats().port[0].fills, 0, "WNA store must not fill L1");
        // A subsequent load of the same line still misses in L1.
        assert!(mem.access(0, 0, false, 2));
        run_until_idle(&mut mem, 10_000);
        assert_eq!(mem.stats().port[0].misses, 2);
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let mut mem = sys();
        // Fill all 4 ways of one L1 set with dirty lines, then evict.
        // Same set & bank: stride = banks * sets_per_bank * line bytes
        // = 32 * 4 * 128 = 16KB = 4096 words.
        for i in 0..5u32 {
            assert!(mem.access(0, i * 4096, true, i as u64));
            run_until_idle(&mut mem, 100_000);
        }
        assert!(mem.stats().port[0].writebacks >= 1);
    }

    #[test]
    fn bank_conflicts_serialize() {
        // Two requests to the same bank take longer than two to different
        // banks (after warming the cache so both are hits).
        let mut mem = sys();
        for addr in [0u32, 32, 1024] {
            assert!(mem.access(0, addr, false, 99));
            run_until_idle(&mut mem, 100_000);
        }
        // Same bank (0 and 1024 words are line 0 and line 32 -> both bank 0).
        let start = mem.now();
        assert!(mem.access(0, 0, false, 1));
        assert!(mem.access(0, 1024, false, 2));
        run_until_idle(&mut mem, 1000);
        let same_bank = mem.now() - start;
        assert!(
            mem.stats().port[0].bank_conflicts >= 1,
            "second same-bank access should count a conflict"
        );

        let start = mem.now();
        assert!(mem.access(0, 0, false, 3));
        assert!(mem.access(0, 32, false, 4)); // line 1 -> bank 1
        run_until_idle(&mut mem, 1000);
        let diff_bank = mem.now() - start;
        assert!(
            same_bank > diff_bank,
            "bank conflict should serialize ({same_bank} vs {diff_bank})"
        );
    }

    #[test]
    fn two_ports_share_l2() {
        let mut mem = MemSystem::new(
            vec![L1Config::vgiw_l1(), L1Config::lvc()],
            SharedConfig::fermi_like(),
        );
        assert!(mem.access(0, 0, false, 1));
        assert!(mem.access(1, 0, false, 2));
        let mut done = run_until_idle(&mut mem, 100_000);
        done.sort_unstable();
        assert_eq!(done, vec![1, 2]);
        assert_eq!(mem.stats().port[0].misses, 1);
        assert_eq!(mem.stats().port[1].misses, 1);
        assert_eq!(mem.stats().l2.accesses, 2);
    }

    // ----- fast-path / batch / zero-copy coverage -----

    /// Tiny deterministic SplitMix64 for the property-style tests (no dev
    /// dependency needed for six lines).
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn radix_grouping_is_fifo_stable_and_complete() {
        let mut rng = Rng(7);
        let mut group_of = Vec::new();
        let mut group_lines = Vec::new();
        let mut table = Vec::new();
        for trial in 0..200 {
            let n = (rng.next() % 40) as usize;
            // Small line universe to force plenty of duplicates (and slot
            // collisions: lines 8 apart collide in a 8..16-slot table).
            let lines: Vec<u64> = (0..n).map(|_| rng.next() % 24).collect();
            let distinct = radix_group(&lines, &mut group_of, &mut group_lines, &mut table);
            assert_eq!(group_of.len(), lines.len(), "trial {trial}");
            assert_eq!(group_lines.len(), distinct, "trial {trial}");
            // Every request maps to its own line (complete + correct).
            for (i, &line) in lines.iter().enumerate() {
                assert_eq!(group_lines[group_of[i] as usize], line, "trial {trial}");
            }
            // Groups appear in first-appearance order and are distinct.
            let mut seen = Vec::new();
            for &line in &lines {
                if !seen.contains(&line) {
                    seen.push(line);
                }
            }
            assert_eq!(group_lines, seen, "trial {trial}: FIFO order violated");
        }
    }

    /// Drives a fast and a reference hierarchy through the same randomized
    /// request stream (loads/stores, scalar and batched, hot and cold
    /// lines, bursts past the reject thresholds) and checks every
    /// observable agrees cycle-by-cycle: acceptance, per-cycle response
    /// sets, and the full statistics block.
    fn assert_fast_matches_reference(ports: Vec<L1Config>, seed: u64) {
        let mut fast = MemSystem::new(ports.clone(), SharedConfig::fermi_like());
        let mut reference = MemSystem::new(ports.clone(), SharedConfig::fermi_like());
        reference.set_reference(true);
        let mut rng = Rng(seed);
        let mut next_id = 0u64;
        for _cycle in 0..3000 {
            if rng.next().is_multiple_of(3) {
                // A batch: a few clustered lines, several words each.
                let port = (rng.next() % ports.len() as u64) as usize;
                let base = (rng.next() % 64) as u32 * 32;
                let n = (rng.next() % 12) as u32;
                let mut reqs = Vec::new();
                for k in 0..n {
                    let addr = base + (rng.next() % 4) as u32 * 32 + k % 3;
                    let is_store = rng.next().is_multiple_of(4);
                    reqs.push(BatchReq {
                        addr_words: addr,
                        is_store,
                        id: next_id + k as u64,
                    });
                }
                let a = fast.access_batch(port, &reqs);
                let b = reference.access_batch(port, &reqs);
                assert_eq!(a, b, "batch acceptance diverged");
                next_id += n as u64;
            } else {
                // Scalar requests, occasionally bursty.
                let burst = 1 + (rng.next() % 4);
                for _ in 0..burst {
                    let port = (rng.next() % ports.len() as u64) as usize;
                    let addr = (rng.next() % 4096) as u32;
                    let is_store = rng.next().is_multiple_of(3);
                    let a = fast.access(port, addr, is_store, next_id);
                    let b = reference.access(port, addr, is_store, next_id);
                    assert_eq!(a, b, "scalar acceptance diverged (id {next_id})");
                    next_id += 1;
                }
            }
            fast.tick();
            reference.tick();
            assert_eq!(
                fast.drain_responses(),
                reference.drain_responses(),
                "per-cycle response streams diverged"
            );
        }
        // Drain the tails too.
        for _ in 0..100_000 {
            if fast.is_idle() && reference.is_idle() {
                break;
            }
            fast.tick();
            reference.tick();
            assert_eq!(fast.drain_responses(), reference.drain_responses());
        }
        assert!(fast.is_idle() && reference.is_idle());
        assert_eq!(fast.stats(), reference.stats(), "statistics diverged");
    }

    #[test]
    fn fast_path_matches_reference_vgiw_shape() {
        assert_fast_matches_reference(vec![L1Config::vgiw_l1(), L1Config::lvc()], 1);
        assert_fast_matches_reference(vec![L1Config::vgiw_l1(), L1Config::lvc()], 42);
    }

    #[test]
    fn fast_path_matches_reference_fermi_shape() {
        // WriteNoAllocate exercises the no-MSHR store-miss path.
        assert_fast_matches_reference(vec![L1Config::fermi_l1()], 7);
        assert_fast_matches_reference(vec![L1Config::fermi_l1()], 1234);
    }

    #[test]
    fn batched_merges_are_fifo_ordered() {
        // Three same-line loads in one batch: one probe, one fill, and the
        // responses must come back in submission order.
        let mut mem = sys();
        let reqs = [
            BatchReq {
                addr_words: 0,
                is_store: false,
                id: 10,
            },
            BatchReq {
                addr_words: 1,
                is_store: false,
                id: 11,
            },
            BatchReq {
                addr_words: 2,
                is_store: false,
                id: 12,
            },
            BatchReq {
                addr_words: 3,
                is_store: false,
                id: 13,
            },
        ];
        assert_eq!(mem.access_batch(0, &reqs), 4);
        assert_eq!(mem.stats().port[0].misses, 1);
        assert_eq!(mem.stats().port[0].mshr_merges, 3);
        assert_eq!(mem.stats().batch.batches, 1);
        assert_eq!(mem.stats().batch.requests, 4);
        assert_eq!(mem.stats().batch.distinct_lines, 1);
        assert_eq!(mem.stats().batch.coalesced, 3);
        assert_eq!(mem.stats().batch.line_hist, [1, 0, 0, 0, 0]);
        let done = run_until_idle(&mut mem, 10_000);
        assert_eq!(done, vec![10, 11, 12, 13], "merge order must be FIFO");
    }

    #[test]
    fn batched_write_before_read_hazard_preserved() {
        // A store followed by a load of the same (in-flight) line in one
        // batch: both merge into the primary miss, the fill installs the
        // line dirty (the store happened), and responses stay FIFO.
        let mut mem = sys();
        assert!(mem.access(0, 0, false, 1)); // primary miss in flight
        let reqs = [
            BatchReq {
                addr_words: 1,
                is_store: true,
                id: 2,
            },
            BatchReq {
                addr_words: 2,
                is_store: false,
                id: 3,
            },
            BatchReq {
                addr_words: 3,
                is_store: false,
                id: 4,
            },
            BatchReq {
                addr_words: 4,
                is_store: false,
                id: 5,
            },
        ];
        assert_eq!(mem.access_batch(0, &reqs), 4);
        let snap = mem.mshr_snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].waiters, 5, "primary + four merged waiters");
        assert!(snap[0].dirty, "merged store must dirty the pending fill");
        let done = run_until_idle(&mut mem, 10_000);
        assert_eq!(done, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn batch_stops_at_first_reject() {
        let mut mem = sys();
        // 20 distinct same-bank lines (stride 1024 words) exhaust the 8
        // MSHRs; acceptance must stop exactly where scalar issue would.
        let reqs: Vec<BatchReq> = (0..20)
            .map(|i| BatchReq {
                addr_words: i * 1024,
                is_store: false,
                id: i as u64,
            })
            .collect();
        let batched = mem.access_batch(0, &reqs);
        let mut scalar = MemSystem::new(vec![L1Config::vgiw_l1()], SharedConfig::fermi_like());
        let mut accepted = 0;
        for r in &reqs {
            if !scalar.access(0, r.addr_words, r.is_store, r.id) {
                break;
            }
            accepted += 1;
        }
        assert_eq!(batched, accepted);
        assert_eq!(mem.stats().port[0].rejects, 1, "one reject, then stop");
    }

    #[test]
    fn zero_copy_delivery_matches_buffered_drain() {
        let mut buffered = sys();
        let mut zero_copy = sys();
        let mut rng = Rng(99);
        let mut next_id = 0;
        let mut deliveries: Vec<Delivery> = Vec::new();
        for cycle in 0..2000 {
            for _ in 0..rng.next() % 3 {
                let addr = (rng.next() % 2048) as u32;
                let store = rng.next().is_multiple_of(5);
                let a = buffered.access(0, addr, store, next_id);
                let b = zero_copy.access(0, addr, store, next_id);
                assert_eq!(a, b);
                next_id += 1;
            }
            buffered.tick();
            deliveries.clear();
            zero_copy.tick_deliver(&mut deliveries);
            let drained = buffered.drain_responses();
            let ids: Vec<ReqId> = deliveries.iter().map(|d| d.id).collect();
            assert_eq!(ids, drained, "cycle {cycle}: delivery order diverged");
            for (i, d) in deliveries.iter().enumerate() {
                assert_eq!(d.cycle, zero_copy.now(), "arrival cycle stamp");
                assert_eq!(d.seq as usize, i, "write sequence");
            }
        }
    }

    #[test]
    #[should_panic(expected = "memory pairing")]
    fn double_issued_id_is_caught_at_merge() {
        let mut mem = sys();
        assert!(mem.access(0, 0, false, 1));
        assert!(mem.access(0, 1, false, 7)); // merge
        let _ = mem.access(0, 2, false, 7); // same id again: double issue
    }

    #[test]
    fn phase_timing_is_observer_only() {
        let mut timed = sys();
        timed.set_time_phases(true);
        let mut plain = sys();
        for i in 0..200u32 {
            let a = timed.access(0, i % 64, i % 7 == 0, i as u64);
            let b = plain.access(0, i % 64, i % 7 == 0, i as u64);
            assert_eq!(a, b);
            timed.tick();
            plain.tick();
            assert_eq!(timed.drain_responses(), plain.drain_responses());
        }
        let p = timed.phases();
        assert!(p.intake_ns > 0, "intake should have been timed");
        assert!(p.deliver_ns > 0, "delivery should have been timed");
        assert_eq!(*plain.phases(), MemPhases::default());
    }
}
