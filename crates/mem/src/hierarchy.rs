//! The cycle-stepped memory hierarchy: banked L1 ports → shared L2 → GDDR5.
//!
//! The hierarchy is a *timing* model: functional data lives in
//! `vgiw_ir::MemoryImage` and is read/written by the cores at issue time
//! (threads in the evaluated kernels are data-parallel, so there are no
//! intra-launch read-after-write dependencies between threads to order).
//!
//! Requests are accepted through [`MemSystem::access`] and complete through
//! [`MemSystem::drain_responses`] after a latency that accumulates port
//! contention, MSHR behaviour, L2 bank contention and DRAM channel/bank
//! occupancy. Contention is modelled with busy-until counters, which is
//! exact for in-order per-bank service.
//!
//! Two L1-level *ports* can be attached: the data L1 and (for VGIW) the
//! live value cache, both backed by the same L2, as in the paper (§3.4).

use crate::cache::{CacheArray, CacheGeometry};
use crate::stats::MemStats;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use vgiw_trace::{TraceEvent, Tracer};

/// Length of the event timing wheel (a power of two). Events within one
/// revolution of `now` go to a wheel slot (O(1) schedule/dispatch, no
/// allocation after warm-up); farther events — chiefly DRAM completions
/// behind a deep busy-until backlog — overflow into a small binary heap
/// and are popped directly when due.
const EVENT_WHEEL: usize = 256;
const EVENT_WHEEL_MASK: u64 = EVENT_WHEEL as u64 - 1;

/// Write policy of an L1-level cache.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WritePolicy {
    /// Dirty lines stay in the cache until eviction (VGIW L1, paper §3.6).
    WriteBack,
    /// Stores are forwarded to L2 immediately (Fermi L1).
    WriteThrough,
}

/// Allocation policy for store misses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AllocPolicy {
    /// Store misses fetch and install the line (VGIW).
    WriteAllocate,
    /// Store misses bypass the cache (Fermi).
    WriteNoAllocate,
}

/// Configuration of one L1-level port (data L1 or LVC).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct L1Config {
    /// Geometry of the cache behind this port.
    pub geometry: CacheGeometry,
    /// Write policy.
    pub write_policy: WritePolicy,
    /// Store-miss allocation policy.
    pub alloc_policy: AllocPolicy,
    /// Hit latency in core cycles.
    pub hit_latency: u64,
    /// Outstanding misses per bank.
    pub mshrs_per_bank: u32,
    /// Accepted-but-unserviced backlog per bank before the port rejects.
    pub queue_depth: u64,
}

impl L1Config {
    /// The paper's VGIW L1: 64KB/32 banks/128B/4-way, write-back +
    /// write-allocate.
    pub fn vgiw_l1() -> L1Config {
        L1Config {
            geometry: CacheGeometry {
                size_bytes: 64 * 1024,
                line_bytes: 128,
                ways: 4,
                banks: 32,
            },
            write_policy: WritePolicy::WriteBack,
            alloc_policy: AllocPolicy::WriteAllocate,
            hit_latency: 4,
            mshrs_per_bank: 8,
            queue_depth: 8,
        }
    }

    /// The Fermi SM's L1: one 128-byte port (a single bank at transaction
    /// granularity — the SM coalesces warp accesses into line-sized
    /// transactions), 32 MSHRs, write-through + no-allocate, and the
    /// ~2-dozen-cycle hit latency GPGPU-Sim models for Fermi.
    pub fn fermi_l1() -> L1Config {
        L1Config {
            geometry: CacheGeometry {
                size_bytes: 64 * 1024,
                line_bytes: 128,
                ways: 4,
                banks: 1,
            },
            write_policy: WritePolicy::WriteThrough,
            alloc_policy: AllocPolicy::WriteNoAllocate,
            hit_latency: 24,
            mshrs_per_bank: 32,
            queue_depth: 8,
        }
    }

    /// The paper's 64KB live value cache, banked like an L1 (§3.4), with
    /// word-granularity lines kept reasonably small.
    pub fn lvc() -> L1Config {
        L1Config {
            geometry: CacheGeometry {
                size_bytes: 64 * 1024,
                line_bytes: 64,
                ways: 4,
                banks: 16,
            },
            write_policy: WritePolicy::WriteBack,
            alloc_policy: AllocPolicy::WriteAllocate,
            hit_latency: 3,
            mshrs_per_bank: 8,
            queue_depth: 8,
        }
    }
}

/// Configuration of the shared levels (L2 + DRAM).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SharedConfig {
    /// L2 geometry (the paper: 768KB, 6 banks, 128B lines, 16-way).
    pub l2_geometry: CacheGeometry,
    /// Additional latency of an L2 hit, in core cycles (includes the
    /// interconnect hop between the core and the L2 partition).
    pub l2_hit_latency: u64,
    /// Core cycles per L2 bank service slot (L2 runs at half core clock).
    pub l2_cycle_ratio: u64,
    /// Number of DRAM channels.
    pub dram_channels: u32,
    /// DRAM banks per channel.
    pub dram_banks_per_channel: u32,
    /// Core cycles a line transfer occupies a channel's data bus.
    pub dram_channel_occupancy: u64,
    /// Core cycles a bank is busy serving one access (activate+CAS+precharge).
    pub dram_bank_occupancy: u64,
    /// Total DRAM access latency in core cycles (queuing excluded).
    pub dram_latency: u64,
}

impl SharedConfig {
    /// The paper's Table 1 memory system (clock ratios folded into
    /// core-cycle latencies).
    pub fn fermi_like() -> SharedConfig {
        SharedConfig {
            l2_geometry: CacheGeometry {
                size_bytes: 768 * 1024,
                line_bytes: 128,
                ways: 16,
                banks: 6,
            },
            l2_hit_latency: 100,
            l2_cycle_ratio: 2,
            dram_channels: 6,
            dram_banks_per_channel: 16,
            dram_channel_occupancy: 6,
            dram_bank_occupancy: 36,
            dram_latency: 300,
        }
    }
}

/// Identifies which L1-level port a request enters through.
pub type PortId = usize;

/// Caller-chosen request identifier, echoed back on completion.
pub type ReqId = u64;

#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
enum Event {
    /// Deliver a completed request to the client.
    Respond(ReqId),
    /// Install a line into an L1 bank and release its MSHR.
    FillL1 { port: usize, line: u64 },
}

struct Mshr {
    line: u64,
    waiters: Vec<ReqId>,
    /// Whether any waiting request is a store (the filled line starts dirty).
    dirty: bool,
}

struct L1Bank {
    array: CacheArray,
    /// In-flight fills, keyed by line. A bank has at most `mshrs_per_bank`
    /// (≤ 32) entries, so a linear scan beats hashing — and the fixed
    /// vector plus the waiter pool below make allocate/merge/fill
    /// allocation-free in steady state.
    mshrs: Vec<Mshr>,
    /// Recycled waiter vectors from completed fills.
    waiter_pool: Vec<Vec<ReqId>>,
    busy_until: u64,
}

impl L1Bank {
    fn mshr_mut(&mut self, line: u64) -> Option<&mut Mshr> {
        self.mshrs.iter_mut().find(|m| m.line == line)
    }
}

struct L1Port {
    config: L1Config,
    banks: Vec<L1Bank>,
}

struct L2Bank {
    array: CacheArray,
    busy_until: u64,
}

struct DramChannel {
    bus_busy_until: u64,
    bank_busy_until: Vec<u64>,
}

/// The banked, cycle-stepped memory hierarchy.
///
/// ```
/// use vgiw_mem::{MemSystem, L1Config, SharedConfig};
///
/// let mut mem = MemSystem::new(vec![L1Config::vgiw_l1()], SharedConfig::fermi_like());
/// assert!(mem.access(0, 0x40, false, 7)); // load word address 0x40
/// let mut done = Vec::new();
/// while done.is_empty() {
///     mem.tick();
///     done.extend(mem.drain_responses());
/// }
/// assert_eq!(done, vec![7]);
/// ```
pub struct MemSystem {
    ports: Vec<L1Port>,
    l2: Vec<L2Bank>,
    l2_geom: CacheGeometry,
    shared: SharedConfig,
    dram: Vec<DramChannel>,
    now: u64,
    /// Near events, one slot per cycle of the next `EVENT_WHEEL` cycles.
    /// Slot buffers are drained in place and keep their capacity.
    wheel: Vec<Vec<Event>>,
    /// One bit per wheel slot with pending events, so the next-event query
    /// scans four words instead of 256 slot buffers.
    wheel_occ: [u64; EVENT_WHEEL / 64],
    wheel_count: usize,
    /// Events more than one wheel revolution ahead, ordered by
    /// `(time, sequence)`; dispatched directly when due (wheel first).
    far_events: BinaryHeap<Reverse<(u64, u64, Event)>>,
    event_seq: u64,
    responses: Vec<ReqId>,
    stats: MemStats,
    tracer: Tracer,
}

impl MemSystem {
    /// Creates a hierarchy with the given L1-level ports sharing one L2.
    ///
    /// # Panics
    /// Panics if `ports` is empty or a geometry is malformed.
    pub fn new(ports: Vec<L1Config>, shared: SharedConfig) -> MemSystem {
        assert!(!ports.is_empty(), "at least one L1 port is required");
        let mk_port = |config: &L1Config| {
            let sets = config.geometry.sets_per_bank();
            L1Port {
                config: *config,
                banks: (0..config.geometry.banks)
                    .map(|_| L1Bank {
                        array: CacheArray::new(sets, config.geometry.ways, config.geometry.banks),
                        mshrs: Vec::with_capacity(config.mshrs_per_bank as usize),
                        waiter_pool: Vec::new(),
                        busy_until: 0,
                    })
                    .collect(),
            }
        };
        let l2_sets = shared.l2_geometry.sets_per_bank();
        MemSystem {
            ports: ports.iter().map(mk_port).collect(),
            l2: (0..shared.l2_geometry.banks)
                .map(|_| L2Bank {
                    array: CacheArray::new(
                        l2_sets,
                        shared.l2_geometry.ways,
                        shared.l2_geometry.banks,
                    ),
                    busy_until: 0,
                })
                .collect(),
            l2_geom: shared.l2_geometry,
            shared,
            dram: (0..shared.dram_channels)
                .map(|_| DramChannel {
                    bus_busy_until: 0,
                    bank_busy_until: vec![0; shared.dram_banks_per_channel as usize],
                })
                .collect(),
            now: 0,
            wheel: (0..EVENT_WHEEL).map(|_| Vec::new()).collect(),
            wheel_occ: [0; EVENT_WHEEL / 64],
            wheel_count: 0,
            far_events: BinaryHeap::new(),
            event_seq: 0,
            responses: Vec::new(),
            stats: MemStats::new(ports.len()),
            tracer: Tracer::off(),
        }
    }

    /// Installs a tracer; fills and writebacks at the L1-level ports emit
    /// [`vgiw_trace::TraceEvent::CacheFill`] /
    /// [`vgiw_trace::TraceEvent::CacheWriteback`] into it. Pure observer.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Current core cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    fn schedule(&mut self, time: u64, event: Event) {
        let t = time.max(self.now + 1);
        if t - self.now < EVENT_WHEEL as u64 {
            let slot = (t & EVENT_WHEEL_MASK) as usize;
            self.wheel[slot].push(event);
            self.wheel_occ[slot >> 6] |= 1 << (slot & 63);
            self.wheel_count += 1;
        } else {
            self.event_seq += 1;
            self.far_events.push(Reverse((t, self.event_seq, event)));
        }
    }

    /// Attempts to issue a memory access on `port` for the 32-bit word at
    /// word address `addr_words`. Returns `false` if the target bank cannot
    /// accept the request this cycle (backlogged port or exhausted MSHRs);
    /// the caller should retry on a later cycle.
    ///
    /// On acceptance, `id` will eventually appear in
    /// [`MemSystem::drain_responses`] — for stores too (VGIW store
    /// completions feed join-token ordering).
    pub fn access(&mut self, port: PortId, addr_words: u32, is_store: bool, id: ReqId) -> bool {
        let byte_addr = (addr_words as u64) * 4;
        let geom = self.ports[port].config.geometry;
        let line = geom.line_of(byte_addr);
        let bank_idx = geom.bank_of(line) as usize;
        let config = self.ports[port].config;
        let now = self.now;

        let bank = &mut self.ports[port].banks[bank_idx];
        let hit_way = bank.array.probe_way(line);
        let hit = hit_way.is_some();
        let allocates = !is_store || config.alloc_policy == AllocPolicy::WriteAllocate;
        if !hit && allocates {
            // MSHR merge first: a secondary miss to an in-flight line needs
            // no port slot (the tag lookup already happened for the primary
            // miss), so a backlogged bank must not reject it.
            if let Some(mshr) = bank.mshr_mut(line) {
                mshr.waiters.push(id);
                mshr.dirty |= is_store;
                self.stats.port[port].accesses += 1;
                self.stats.port[port].mshr_merges += 1;
                if is_store {
                    self.stats.port[port].stores += 1;
                }
                return true;
            }
        }

        // Port backlog check.
        if bank.busy_until > now + config.queue_depth {
            self.stats.port[port].rejects += 1;
            return false;
        }
        if !hit && allocates && bank.mshrs.len() >= config.mshrs_per_bank as usize {
            self.stats.port[port].rejects += 1;
            return false;
        }

        // Occupy the bank port for one cycle.
        let t0 = bank.busy_until.max(now);
        bank.busy_until = t0 + 1;
        self.stats.port[port].accesses += 1;
        if is_store {
            self.stats.port[port].stores += 1;
        }

        if let Some(way) = hit_way {
            let mark_dirty = is_store && config.write_policy == WritePolicy::WriteBack;
            self.ports[port].banks[bank_idx]
                .array
                .touch_way(line, way, mark_dirty);
            self.stats.port[port].hits += 1;
            if is_store && config.write_policy == WritePolicy::WriteThrough {
                // Write-through traffic into L2 (fire and forget).
                self.l2_access(port, line, true, t0);
            }
            self.schedule(t0 + config.hit_latency, Event::Respond(id));
            return true;
        }

        self.stats.port[port].misses += 1;
        if !allocates {
            // Write-no-allocate store miss: forward to L2, ack immediately
            // (write buffer semantics).
            self.l2_access(port, line, true, t0);
            self.schedule(t0 + 1, Event::Respond(id));
            return true;
        }

        // Primary miss: allocate an MSHR and fetch the line from L2.
        let bank = &mut self.ports[port].banks[bank_idx];
        let mut waiters = bank.waiter_pool.pop().unwrap_or_default();
        waiters.push(id);
        bank.mshrs.push(Mshr {
            line,
            waiters,
            dirty: is_store,
        });
        let fill_time = self.l2_access(port, line, false, t0);
        self.schedule(fill_time, Event::FillL1 { port, line });
        true
    }

    /// Timing of an L2 access for `line` (L1-line granularity is converted
    /// to L2-line granularity internally). Returns the completion time.
    fn l2_access(&mut self, port: usize, l1_line: u64, is_store: bool, t: u64) -> u64 {
        // Convert: l1_line index is in units of the issuing port's line size.
        let byte = l1_line * self.ports[port].config.geometry.line_bytes as u64;
        let line = self.l2_geom.line_of(byte);
        let bank_idx = self.l2_geom.bank_of(line) as usize;
        let ratio = self.shared.l2_cycle_ratio;
        let bank = &mut self.l2[bank_idx];
        let t1 = bank.busy_until.max(t);
        bank.busy_until = t1 + ratio;
        self.stats.l2.accesses += 1;
        if is_store {
            self.stats.l2.stores += 1;
        }

        let hit = bank.array.access(line, is_store);
        if hit {
            self.stats.l2.hits += 1;
            return t1 + self.shared.l2_hit_latency;
        }
        self.stats.l2.misses += 1;
        // A miss always *fetches* the line (a store miss installs it dirty;
        // the eventual eviction writes it back — charging a DRAM write here
        // too would double-count the traffic).
        let done = self.dram_access(line, t1, false);
        // Install into L2 now (timing-approximate: tags update early, the
        // returned completion time carries the real latency).
        let evicted = self.l2[bank_idx].array.fill(line, is_store);
        if let Some(ev) = evicted {
            if ev.dirty {
                self.dram_access(ev.line, done, true);
            }
        }
        done + self.shared.l2_hit_latency
    }

    fn dram_access(&mut self, l2_line: u64, t: u64, is_store: bool) -> u64 {
        let chan_idx = (l2_line % self.shared.dram_channels as u64) as usize;
        let bank_idx = ((l2_line / self.shared.dram_channels as u64)
            % self.shared.dram_banks_per_channel as u64) as usize;
        if is_store {
            self.stats.dram.writes += 1;
        } else {
            self.stats.dram.reads += 1;
        }
        let chan = &mut self.dram[chan_idx];
        let start = t
            .max(chan.bus_busy_until)
            .max(chan.bank_busy_until[bank_idx]);
        chan.bus_busy_until = start + self.shared.dram_channel_occupancy;
        chan.bank_busy_until[bank_idx] = start + self.shared.dram_bank_occupancy;
        start + self.shared.dram_latency
    }

    /// Advances the hierarchy by one core cycle, completing due events
    /// (wheel slot first, then due overflow events, each in schedule order).
    pub fn tick(&mut self) {
        self.now += 1;
        let slot = (self.now & EVENT_WHEEL_MASK) as usize;
        if !self.wheel[slot].is_empty() {
            // Drain in place and hand the buffer back: dispatching can only
            // schedule *future* events (distance ≥ 1), never into this slot.
            let mut due = std::mem::take(&mut self.wheel[slot]);
            self.wheel_occ[slot >> 6] &= !(1 << (slot & 63));
            self.wheel_count -= due.len();
            for &event in due.iter() {
                self.dispatch(event);
            }
            due.clear();
            debug_assert!(self.wheel[slot].is_empty());
            self.wheel[slot] = due;
        }
        while let Some(&Reverse((t, _, event))) = self.far_events.peek() {
            if t > self.now {
                break;
            }
            self.far_events.pop();
            self.dispatch(event);
        }
    }

    fn dispatch(&mut self, event: Event) {
        match event {
            Event::Respond(id) => self.responses.push(id),
            Event::FillL1 { port, line } => self.fill_l1(port, line),
        }
    }

    /// Absolute cycle of the earliest pending event, if any. Lets a client
    /// that is otherwise idle fast-forward to just before the next
    /// completion instead of ticking through dead cycles. O(1): a short
    /// word scan over the wheel occupancy bitmap plus a heap peek.
    pub fn next_event_cycle(&self) -> Option<u64> {
        let far = self.far_events.peek().map(|&Reverse((t, _, _))| t);
        let near = if self.wheel_count == 0 {
            None
        } else {
            let start = ((self.now + 1) & EVENT_WHEEL_MASK) as usize;
            let nw = self.wheel_occ.len();
            let sw = start >> 6;
            let mut found = None;
            let first = self.wheel_occ[sw] & (!0u64 << (start & 63));
            if first != 0 {
                found = Some((sw << 6) + first.trailing_zeros() as usize);
            } else {
                for i in 1..=nw {
                    let w = (sw + i) & (nw - 1);
                    if self.wheel_occ[w] != 0 {
                        found = Some((w << 6) + self.wheel_occ[w].trailing_zeros() as usize);
                        break;
                    }
                }
            }
            found.map(|slot| {
                let dist = (slot.wrapping_sub(start) as u64) & EVENT_WHEEL_MASK;
                self.now + 1 + dist
            })
        };
        match (near, far) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, None) => a,
            (None, b) => b,
        }
    }

    /// Jumps the clock forward `k` cycles in one step. The caller must
    /// guarantee no event falls in the skipped range (see
    /// [`MemSystem::next_event_cycle`]) and that completed responses have
    /// been drained; idle cycles carry no other state.
    pub fn advance_idle(&mut self, k: u64) {
        debug_assert!(
            self.responses.is_empty(),
            "fast-forwarding undrained responses"
        );
        debug_assert!(
            self.next_event_cycle().is_none_or(|t| t > self.now + k),
            "fast-forward would skip over a scheduled event"
        );
        self.now += k;
    }

    fn fill_l1(&mut self, port: usize, line: u64) {
        let geom = self.ports[port].config.geometry;
        let bank_idx = geom.bank_of(line) as usize;
        let hit_lat = self.ports[port].config.hit_latency;
        let bank = &mut self.ports[port].banks[bank_idx];
        let (mut waiters, dirty) = match bank.mshrs.iter().position(|m| m.line == line) {
            Some(i) => {
                let m = bank.mshrs.swap_remove(i);
                (m.waiters, m.dirty)
            }
            None => (Vec::new(), false),
        };
        let evicted = bank.array.fill(line, dirty);
        self.stats.port[port].fills += 1;
        self.tracer.emit(self.now, || TraceEvent::CacheFill {
            port: port as u8,
            line,
        });
        if let Some(ev) = evicted {
            if ev.dirty {
                self.stats.port[port].writebacks += 1;
                self.tracer.emit(self.now, || TraceEvent::CacheWriteback {
                    port: port as u8,
                    line: ev.line,
                });
                let t = self.now;
                self.l2_access(port, ev.line, true, t);
            }
        }
        let respond_at = self.now + hit_lat;
        for &id in &waiters {
            self.schedule(respond_at, Event::Respond(id));
        }
        waiters.clear();
        self.ports[port].banks[bank_idx].waiter_pool.push(waiters);
    }

    /// Returns (and clears) the requests completed since the last call.
    pub fn drain_responses(&mut self) -> Vec<ReqId> {
        std::mem::take(&mut self.responses)
    }

    /// Appends the requests completed since the last drain to `out`,
    /// recycling the caller's buffer instead of allocating per cycle.
    pub fn drain_responses_into(&mut self, out: &mut Vec<ReqId>) {
        out.append(&mut self.responses);
    }

    /// Whether any request is still in flight.
    pub fn is_idle(&self) -> bool {
        self.wheel_count == 0 && self.far_events.is_empty() && self.responses.is_empty()
    }

    /// Snapshots every outstanding MSHR entry (for deadlock reports: a
    /// fill that never completes shows up here as a stuck line with its
    /// waiting request IDs).
    pub fn mshr_snapshot(&self) -> Vec<MshrSnapshot> {
        let mut out = Vec::new();
        for (pi, port) in self.ports.iter().enumerate() {
            for (bi, bank) in port.banks.iter().enumerate() {
                for m in &bank.mshrs {
                    out.push(MshrSnapshot {
                        port: pi,
                        bank: bi,
                        line: m.line,
                        waiters: m.waiters.len(),
                        dirty: m.dirty,
                    });
                }
            }
        }
        out
    }

    /// Number of scheduled timing events still in flight (fills, DRAM
    /// completions, pending responses).
    pub fn in_flight_events(&self) -> usize {
        self.wheel_count + self.far_events.len() + self.responses.len()
    }
}

/// One outstanding MSHR entry, as reported by [`MemSystem::mshr_snapshot`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MshrSnapshot {
    /// L1-level port index (0 = data L1; 1 = LVC when configured).
    pub port: usize,
    /// Bank index within the port.
    pub bank: usize,
    /// The line address being filled.
    pub line: u64,
    /// Requests waiting on the fill.
    pub waiters: usize,
    /// Whether the filled line will start dirty.
    pub dirty: bool,
}

impl std::fmt::Debug for MemSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MemSystem {{ ports: {}, cycle: {}, in_flight: {} }}",
            self.ports.len(),
            self.now,
            self.wheel_count + self.far_events.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_until_idle(mem: &mut MemSystem, limit: u64) -> Vec<ReqId> {
        let mut done = Vec::new();
        for _ in 0..limit {
            mem.tick();
            done.extend(mem.drain_responses());
            if mem.is_idle() {
                break;
            }
        }
        done
    }

    fn sys() -> MemSystem {
        MemSystem::new(vec![L1Config::vgiw_l1()], SharedConfig::fermi_like())
    }

    #[test]
    fn cold_miss_then_hit_latency_ordering() {
        let mut mem = sys();
        assert!(mem.access(0, 0, false, 1));
        let done = run_until_idle(&mut mem, 10_000);
        assert_eq!(done, vec![1]);
        let miss_time = mem.now();
        assert!(
            miss_time > 100,
            "cold miss should reach DRAM (took {miss_time})"
        );

        // Same line again: must now be an L1 hit, far faster.
        assert!(mem.access(0, 1, false, 2));
        let before = mem.now();
        let done = run_until_idle(&mut mem, 10_000);
        assert_eq!(done, vec![2]);
        let hit_cycles = mem.now() - before;
        assert!(hit_cycles <= 8, "hit should be fast, took {hit_cycles}");
        assert_eq!(mem.stats().port[0].hits, 1);
        assert_eq!(mem.stats().port[0].misses, 1);
    }

    #[test]
    fn mshr_merges_share_one_fill() {
        let mut mem = sys();
        assert!(mem.access(0, 0, false, 1));
        assert!(mem.access(0, 1, false, 2)); // same 128B line -> merge
        assert!(mem.access(0, 2, false, 3));
        let mut done = run_until_idle(&mut mem, 10_000);
        done.sort_unstable();
        assert_eq!(done, vec![1, 2, 3]);
        assert_eq!(mem.stats().port[0].misses, 1);
        assert_eq!(mem.stats().port[0].mshr_merges, 2);
        assert_eq!(mem.stats().dram.reads, 1);
    }

    #[test]
    fn mshr_capacity_rejects() {
        let mut mem = sys();
        // Distinct lines mapping to the same bank: stride = banks*line =
        // 32*128 bytes = 1024 words.
        let mut accepted = 0;
        for i in 0..20u32 {
            if mem.access(0, i * 1024, false, i as u64) {
                accepted += 1;
            }
        }
        assert!(accepted >= 8, "MSHRs should allow at least 8");
        assert!(accepted < 20, "MSHR capacity should reject some");
        assert!(mem.stats().port[0].rejects > 0);
    }

    #[test]
    fn writeback_vs_writethrough_l2_traffic() {
        // Repeated stores to one line: WB keeps them local, WT forwards all.
        let mut wb = sys();
        for i in 0..16u32 {
            assert!(wb.access(0, 0, true, i as u64));
            run_until_idle(&mut wb, 10_000);
        }
        let wb_l2 = wb.stats().l2.accesses;

        let mut wt = MemSystem::new(vec![L1Config::fermi_l1()], SharedConfig::fermi_like());
        for i in 0..16u32 {
            assert!(wt.access(0, 0, true, i as u64));
            run_until_idle(&mut wt, 10_000);
        }
        let wt_l2 = wt.stats().l2.accesses;
        assert!(
            wt_l2 > wb_l2,
            "write-through should produce more L2 traffic ({wt_l2} vs {wb_l2})"
        );
    }

    #[test]
    fn write_no_allocate_store_miss_bypasses() {
        let mut mem = MemSystem::new(vec![L1Config::fermi_l1()], SharedConfig::fermi_like());
        assert!(mem.access(0, 0, true, 1));
        let done = run_until_idle(&mut mem, 10_000);
        assert_eq!(done, vec![1]);
        assert_eq!(mem.stats().port[0].fills, 0, "WNA store must not fill L1");
        // A subsequent load of the same line still misses in L1.
        assert!(mem.access(0, 0, false, 2));
        run_until_idle(&mut mem, 10_000);
        assert_eq!(mem.stats().port[0].misses, 2);
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let mut mem = sys();
        // Fill all 4 ways of one L1 set with dirty lines, then evict.
        // Same set & bank: stride = banks * sets_per_bank * line bytes
        // = 32 * 4 * 128 = 16KB = 4096 words.
        for i in 0..5u32 {
            assert!(mem.access(0, i * 4096, true, i as u64));
            run_until_idle(&mut mem, 100_000);
        }
        assert!(mem.stats().port[0].writebacks >= 1);
    }

    #[test]
    fn bank_conflicts_serialize() {
        // Two requests to the same bank take longer than two to different
        // banks (after warming the cache so both are hits).
        let mut mem = sys();
        for addr in [0u32, 32, 1024] {
            assert!(mem.access(0, addr, false, 99));
            run_until_idle(&mut mem, 100_000);
        }
        // Same bank (0 and 1024 words are line 0 and line 32 -> both bank 0).
        let start = mem.now();
        assert!(mem.access(0, 0, false, 1));
        assert!(mem.access(0, 1024, false, 2));
        run_until_idle(&mut mem, 1000);
        let same_bank = mem.now() - start;

        let start = mem.now();
        assert!(mem.access(0, 0, false, 3));
        assert!(mem.access(0, 32, false, 4)); // line 1 -> bank 1
        run_until_idle(&mut mem, 1000);
        let diff_bank = mem.now() - start;
        assert!(
            same_bank > diff_bank,
            "bank conflict should serialize ({same_bank} vs {diff_bank})"
        );
    }

    #[test]
    fn two_ports_share_l2() {
        let mut mem = MemSystem::new(
            vec![L1Config::vgiw_l1(), L1Config::lvc()],
            SharedConfig::fermi_like(),
        );
        assert!(mem.access(0, 0, false, 1));
        assert!(mem.access(1, 0, false, 2));
        let mut done = run_until_idle(&mut mem, 100_000);
        done.sort_unstable();
        assert_eq!(done, vec![1, 2]);
        assert_eq!(mem.stats().port[0].misses, 1);
        assert_eq!(mem.stats().port[1].misses, 1);
        assert_eq!(mem.stats().l2.accesses, 2);
    }
}
