//! Set-associative tag arrays with LRU replacement.
//!
//! [`CacheArray`] is a pure state machine over cache *lines* (no data — the
//! functional image lives in `vgiw_ir::MemoryImage`); the timing hierarchy
//! in [`crate::hierarchy`] composes banks of these arrays with ports, MSHRs
//! and DRAM contention.

/// Geometry of one cache level.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CacheGeometry {
    /// Total capacity in bytes (across all banks).
    pub size_bytes: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Associativity.
    pub ways: u32,
    /// Number of independently-ported banks.
    pub banks: u32,
}

impl CacheGeometry {
    /// Number of sets per bank.
    ///
    /// # Panics
    /// Panics if the geometry does not divide evenly.
    pub fn sets_per_bank(&self) -> u32 {
        let lines = self.size_bytes / self.line_bytes;
        assert_eq!(
            self.size_bytes % self.line_bytes,
            0,
            "size must be a multiple of line"
        );
        let per_bank = lines / self.banks;
        assert_eq!(
            lines % self.banks,
            0,
            "lines must divide evenly across banks"
        );
        assert_eq!(
            per_bank % self.ways,
            0,
            "lines per bank must divide by ways"
        );
        per_bank / self.ways
    }

    /// The line index (line-granular address) of a byte address.
    pub fn line_of(&self, byte_addr: u64) -> u64 {
        // Line sizes are powers of two in every modelled machine; the
        // shift keeps 64-bit division out of the per-access hot path.
        if self.line_bytes.is_power_of_two() {
            byte_addr >> self.line_bytes.trailing_zeros()
        } else {
            byte_addr / self.line_bytes as u64
        }
    }

    /// The bank servicing a line (line-interleaved banking).
    pub fn bank_of(&self, line: u64) -> u32 {
        if self.banks.is_power_of_two() {
            (line & (self.banks as u64 - 1)) as u32
        } else {
            (line % self.banks as u64) as u32
        }
    }
}

/// Outcome of a cache fill: the victim line that was evicted, if any, and
/// whether it was dirty (needs writeback).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Eviction {
    /// The evicted line index.
    pub line: u64,
    /// Whether the victim held modified data.
    pub dirty: bool,
}

/// Packed per-way record: `line << 2 | dirty << 1 | valid`.
///
/// Tag matching compares the whole word against `line << 2 | VALID` masked
/// by `!DIRTY`, so a probe is one load + one compare per way with no
/// branching on separate `valid`/`dirty` flags. Line indices are byte
/// addresses divided by the line size, so 62 bits are ample.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct LineMeta(u64);

impl LineMeta {
    const VALID: u64 = 1;
    const DIRTY: u64 = 2;
    const EMPTY: LineMeta = LineMeta(0);

    #[inline]
    fn new(line: u64, dirty: bool) -> LineMeta {
        LineMeta(line << 2 | u64::from(dirty) << 1 | Self::VALID)
    }

    /// The packed value a valid, clean entry for `line` would hold; a way
    /// matches `line` iff `self.0 & !DIRTY == key`.
    #[inline]
    fn key(line: u64) -> u64 {
        line << 2 | Self::VALID
    }

    #[inline]
    fn matches(self, key: u64) -> bool {
        self.0 & !Self::DIRTY == key
    }

    #[inline]
    fn valid(self) -> bool {
        self.0 & Self::VALID != 0
    }

    #[inline]
    fn dirty(self) -> bool {
        self.0 & Self::DIRTY != 0
    }

    #[inline]
    fn line(self) -> u64 {
        self.0 >> 2
    }

    #[inline]
    fn mark_dirty(&mut self) {
        self.0 |= Self::DIRTY;
    }
}

/// One bank's tag array: set-associative, true-LRU.
///
/// State is structure-of-arrays: a dense column of packed [`LineMeta`]
/// records (tag + valid + dirty in one 8-byte word) and a parallel LRU
/// column, both flat (`set * ways + way`). The set index uses precomputed
/// shift/mask when the geometry is a power of two, keeping the per-access
/// lookup free of pointer chasing and division, and a tag scan touches 8
/// bytes per way instead of a 32-byte AoS record. A one-entry way
/// prediction hint remembers the last way this bank hit or filled;
/// [`CacheArray::probe_way_hinted`] checks it before scanning the set.
#[derive(Clone, Debug)]
pub struct CacheArray {
    meta: Vec<LineMeta>,
    lru: Vec<u64>,
    ways_per_set: u32,
    num_sets: u32,
    bank_stride: u32,
    /// `(stride_shift, set_mask)` when both `bank_stride` and `num_sets`
    /// are powers of two (every modelled L1/LVC; the 6-banked L2 falls
    /// back to div/mod).
    pow2: Option<(u32, u64)>,
    tick: u64,
    /// Way-prediction hint: flat index of the most recent hit or fill.
    /// Purely an accelerator — if `meta[hint]` matches the probed line the
    /// match is genuine (a line lives in exactly one way of one set), and
    /// a stale hint only costs the ordinary set scan.
    hint: u32,
}

impl CacheArray {
    /// Creates an empty array with `num_sets` sets of `ways` ways.
    ///
    /// Lines arriving at a banked array are already bank-filtered (all have
    /// the same `line % banks`); `bank_stride` is that bank count, folded
    /// out of the line index before set selection. Use `1` for an unbanked
    /// array.
    ///
    /// # Panics
    /// Panics if `num_sets`, `ways` or `bank_stride` is zero.
    pub fn new(num_sets: u32, ways: u32, bank_stride: u32) -> CacheArray {
        assert!(num_sets > 0 && ways > 0, "cache must have sets and ways");
        assert!(bank_stride > 0, "bank stride must be positive");
        let pow2 = (bank_stride.is_power_of_two() && num_sets.is_power_of_two())
            .then(|| (bank_stride.trailing_zeros(), num_sets as u64 - 1));
        let entries = num_sets as usize * ways as usize;
        CacheArray {
            meta: vec![LineMeta::EMPTY; entries],
            lru: vec![0; entries],
            ways_per_set: ways,
            num_sets,
            bank_stride,
            pow2,
            tick: 0,
            hint: 0,
        }
    }

    #[inline]
    fn set_index(&self, line: u64) -> usize {
        match self.pow2 {
            Some((shift, mask)) => ((line >> shift) & mask) as usize,
            None => ((line / self.bank_stride as u64) % self.num_sets as u64) as usize,
        }
    }

    #[inline]
    fn set_range(&self, line: u64) -> std::ops::Range<usize> {
        let start = self.set_index(line) * self.ways_per_set as usize;
        start..start + self.ways_per_set as usize
    }

    /// Looks up a line; on hit, updates LRU and (if `mark_dirty`) the dirty
    /// bit. Returns whether the line was present.
    pub fn access(&mut self, line: u64, mark_dirty: bool) -> bool {
        match self.probe_way(line) {
            Some(way) => {
                self.touch_way(line, way, mark_dirty);
                true
            }
            None => {
                self.tick += 1;
                false
            }
        }
    }

    /// Checks presence without touching LRU or dirty state.
    pub fn probe(&self, line: u64) -> bool {
        self.probe_way(line).is_some()
    }

    /// Checks presence without touching LRU or dirty state, returning the
    /// hit way's flat index so a later [`CacheArray::touch_way`] can skip
    /// the tag scan.
    #[inline]
    pub fn probe_way(&self, line: u64) -> Option<u32> {
        let key = LineMeta::key(line);
        let range = self.set_range(line);
        let start = range.start;
        self.meta[range]
            .iter()
            .position(|m| m.matches(key))
            .map(|i| (start + i) as u32)
    }

    /// [`CacheArray::probe_way`] with the one-entry way-prediction hint
    /// checked first: streaming kernels re-touch the same line for every
    /// word, so most probes resolve on a single compare. Falls back to the
    /// full set scan (which also retrains the hint) on a hint miss.
    #[inline]
    pub fn probe_way_hinted(&mut self, line: u64) -> Option<u32> {
        let key = LineMeta::key(line);
        let hint = self.hint as usize;
        if let Some(m) = self.meta.get(hint) {
            if m.matches(key) {
                return Some(self.hint);
            }
        }
        let way = self.probe_way(line);
        if let Some(w) = way {
            self.hint = w;
        }
        way
    }

    /// Completes a hit found by [`CacheArray::probe_way`]: updates LRU and
    /// (if `mark_dirty`) the dirty bit of the given way.
    ///
    /// # Panics
    /// Panics (or corrupts LRU state in release builds) if `way` did not
    /// come from a `probe_way` hit on this array with no intervening
    /// mutation.
    #[inline]
    pub fn touch_way(&mut self, line: u64, way: u32, mark_dirty: bool) {
        self.tick += 1;
        let m = &mut self.meta[way as usize];
        debug_assert!(m.matches(LineMeta::key(line)), "touch_way on a stale probe");
        if mark_dirty {
            m.mark_dirty();
        }
        self.lru[way as usize] = self.tick;
        self.hint = way;
    }

    /// Installs a line (after a miss), evicting the LRU victim if the set is
    /// full. The new line's dirty bit is set from `dirty`.
    pub fn fill(&mut self, line: u64, dirty: bool) -> Option<Eviction> {
        self.tick += 1;
        let tick = self.tick;
        let key = LineMeta::key(line);
        let range = self.set_range(line);
        let start = range.start;
        // If the line is somehow already present (e.g. a racing fill), just
        // refresh it.
        for (i, m) in self.meta[range.clone()].iter_mut().enumerate() {
            if m.matches(key) {
                if dirty {
                    m.mark_dirty();
                }
                self.lru[start + i] = tick;
                self.hint = (start + i) as u32;
                return None;
            }
        }
        // Prefer an invalid way.
        if let Some(i) = self.meta[range.clone()].iter().position(|m| !m.valid()) {
            self.meta[start + i] = LineMeta::new(line, dirty);
            self.lru[start + i] = tick;
            self.hint = (start + i) as u32;
            return None;
        }
        // Evict LRU.
        let victim = range
            .min_by_key(|&i| self.lru[i])
            .expect("sets are never empty");
        let evicted = Eviction {
            line: self.meta[victim].line(),
            dirty: self.meta[victim].dirty(),
        };
        self.meta[victim] = LineMeta::new(line, dirty);
        self.lru[victim] = tick;
        self.hint = victim as u32;
        Some(evicted)
    }

    /// Writes the array's mutable state (packed meta words, LRU column,
    /// LRU tick, way hint) as one snapshot section. Geometry is config,
    /// not state; [`CacheArray::restore`] validates it instead.
    pub(crate) fn save(&self, w: &mut vgiw_snapshot::SnapshotWriter, name: &str) {
        w.section(name);
        w.u64("entries", self.meta.len() as u64);
        let meta: Vec<u64> = self.meta.iter().map(|m| m.0).collect();
        w.u64_list("meta", &meta);
        w.u64_list("lru", &self.lru);
        w.u64("tick", self.tick);
        w.u64("hint", u64::from(self.hint));
        w.end_section();
    }

    /// Restores state written by [`CacheArray::save`] into an array of the
    /// same geometry.
    ///
    /// # Errors
    /// Fails if the snapshot's entry count differs from this array's.
    pub(crate) fn restore(
        &mut self,
        r: &mut vgiw_snapshot::SnapshotReader<'_>,
        name: &str,
    ) -> Result<(), vgiw_snapshot::SnapshotError> {
        r.section(name)?;
        let entries = r.u64("entries")? as usize;
        if entries != self.meta.len() {
            return Err(vgiw_snapshot::SnapshotError::Incompatible {
                detail: format!(
                    "cache array `{name}` has {} entries, snapshot has {entries}",
                    self.meta.len()
                ),
            });
        }
        let meta = r.u64_list("meta")?;
        let lru = r.u64_list("lru")?;
        if meta.len() != entries || lru.len() != entries {
            return Err(vgiw_snapshot::SnapshotError::Corrupt {
                detail: format!("cache array `{name}` list lengths disagree with entry count"),
            });
        }
        for (dst, src) in self.meta.iter_mut().zip(&meta) {
            *dst = LineMeta(*src);
        }
        self.lru.copy_from_slice(&lru);
        self.tick = r.u64("tick")?;
        self.hint = r.u64("hint")? as u32;
        r.end_section()
    }

    /// Invalidates a line if present, returning whether it was dirty.
    pub fn invalidate(&mut self, line: u64) -> Option<bool> {
        let key = LineMeta::key(line);
        let range = self.set_range(line);
        for m in &mut self.meta[range] {
            if m.matches(key) {
                let dirty = m.dirty();
                *m = LineMeta::EMPTY;
                return Some(dirty);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_math() {
        // The paper's L1: 64KB, 32 banks, 128B lines, 4-way.
        let g = CacheGeometry {
            size_bytes: 64 * 1024,
            line_bytes: 128,
            ways: 4,
            banks: 32,
        };
        assert_eq!(g.sets_per_bank(), 4);
        assert_eq!(g.line_of(256), 2);
        assert_eq!(g.bank_of(33), 1);
    }

    #[test]
    fn hit_after_fill() {
        let mut c = CacheArray::new(4, 2, 1);
        assert!(!c.access(10, false));
        assert_eq!(c.fill(10, false), None);
        assert!(c.access(10, false));
        assert!(c.probe(10));
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = CacheArray::new(1, 2, 1);
        c.fill(1, false);
        c.fill(2, false);
        c.access(1, false); // 2 is now LRU
        let ev = c.fill(3, false).unwrap();
        assert_eq!(ev.line, 2);
        assert!(!ev.dirty);
        assert!(c.probe(1) && c.probe(3) && !c.probe(2));
    }

    #[test]
    fn dirty_victims_are_reported() {
        let mut c = CacheArray::new(1, 1, 1);
        c.fill(1, false);
        c.access(1, true); // dirty it
        let ev = c.fill(2, false).unwrap();
        assert_eq!(
            ev,
            Eviction {
                line: 1,
                dirty: true
            }
        );
    }

    #[test]
    fn fill_of_present_line_is_idempotent() {
        let mut c = CacheArray::new(1, 2, 1);
        c.fill(1, true);
        assert_eq!(c.fill(1, false), None);
        let ev = c.fill(2, false);
        assert_eq!(ev, None);
        // Line 1 must still be dirty.
        // Line 1 was refreshed before line 2 was installed, so it is LRU;
        // its dirty bit from the first fill must have survived the refresh.
        let ev = c.fill(3, false).unwrap();
        assert_eq!(
            ev,
            Eviction {
                line: 1,
                dirty: true
            }
        );
    }

    #[test]
    fn invalidate_reports_dirtiness() {
        let mut c = CacheArray::new(2, 1, 1);
        c.fill(4, true);
        assert_eq!(c.invalidate(4), Some(true));
        assert_eq!(c.invalidate(4), None);
        assert!(!c.probe(4));
    }

    #[test]
    #[should_panic(expected = "sets and ways")]
    fn zero_geometry_panics() {
        let _ = CacheArray::new(0, 1, 1);
    }

    #[test]
    fn hinted_probe_agrees_with_probe_way() {
        let mut c = CacheArray::new(4, 2, 1);
        // Hint starts stale (slot 0 is empty); a hinted probe of an absent
        // line must miss, not false-positive.
        assert_eq!(c.probe_way_hinted(10), None);
        c.fill(10, false);
        c.fill(14, false); // same set as 10 (4 sets): way 1
        for line in [10u64, 14, 11, 10, 14, 2, 10] {
            assert_eq!(c.probe_way_hinted(line), c.probe_way(line), "line {line}");
        }
        // After an invalidate, the (now stale) hint must not resurrect the
        // line: the packed meta word is zeroed, so the key compare fails.
        let way = c.probe_way(10).unwrap();
        c.touch_way(10, way, false); // train the hint on line 10
        c.invalidate(10);
        assert_eq!(c.probe_way_hinted(10), None);
    }

    #[test]
    fn packed_meta_roundtrip() {
        let m = LineMeta::new(0x1234_5678, true);
        assert!(m.valid() && m.dirty());
        assert_eq!(m.line(), 0x1234_5678);
        assert!(m.matches(LineMeta::key(0x1234_5678)));
        assert!(!m.matches(LineMeta::key(0x1234_5679)));
        assert!(!LineMeta::EMPTY.matches(LineMeta::key(0)));
    }
}
