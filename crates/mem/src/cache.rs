//! Set-associative tag arrays with LRU replacement.
//!
//! [`CacheArray`] is a pure state machine over cache *lines* (no data — the
//! functional image lives in `vgiw_ir::MemoryImage`); the timing hierarchy
//! in [`crate::hierarchy`] composes banks of these arrays with ports, MSHRs
//! and DRAM contention.

/// Geometry of one cache level.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CacheGeometry {
    /// Total capacity in bytes (across all banks).
    pub size_bytes: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Associativity.
    pub ways: u32,
    /// Number of independently-ported banks.
    pub banks: u32,
}

impl CacheGeometry {
    /// Number of sets per bank.
    ///
    /// # Panics
    /// Panics if the geometry does not divide evenly.
    pub fn sets_per_bank(&self) -> u32 {
        let lines = self.size_bytes / self.line_bytes;
        assert_eq!(
            self.size_bytes % self.line_bytes,
            0,
            "size must be a multiple of line"
        );
        let per_bank = lines / self.banks;
        assert_eq!(
            lines % self.banks,
            0,
            "lines must divide evenly across banks"
        );
        assert_eq!(
            per_bank % self.ways,
            0,
            "lines per bank must divide by ways"
        );
        per_bank / self.ways
    }

    /// The line index (line-granular address) of a byte address.
    pub fn line_of(&self, byte_addr: u64) -> u64 {
        // Line sizes are powers of two in every modelled machine; the
        // shift keeps 64-bit division out of the per-access hot path.
        if self.line_bytes.is_power_of_two() {
            byte_addr >> self.line_bytes.trailing_zeros()
        } else {
            byte_addr / self.line_bytes as u64
        }
    }

    /// The bank servicing a line (line-interleaved banking).
    pub fn bank_of(&self, line: u64) -> u32 {
        if self.banks.is_power_of_two() {
            (line & (self.banks as u64 - 1)) as u32
        } else {
            (line % self.banks as u64) as u32
        }
    }
}

/// Outcome of a cache fill: the victim line that was evicted, if any, and
/// whether it was dirty (needs writeback).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Eviction {
    /// The evicted line index.
    pub line: u64,
    /// Whether the victim held modified data.
    pub dirty: bool,
}

#[derive(Clone, Copy, Debug)]
struct Way {
    line: u64,
    valid: bool,
    dirty: bool,
    lru: u64,
}

/// One bank's tag array: set-associative, true-LRU.
///
/// Ways are stored in one flat vector (`set * ways + way`) and the set
/// index uses precomputed shift/mask when the geometry is a power of two,
/// keeping the per-access lookup free of pointer chasing and division.
#[derive(Clone, Debug)]
pub struct CacheArray {
    ways: Vec<Way>,
    ways_per_set: u32,
    num_sets: u32,
    bank_stride: u32,
    /// `(stride_shift, set_mask)` when both `bank_stride` and `num_sets`
    /// are powers of two (every modelled L1/LVC; the 6-banked L2 falls
    /// back to div/mod).
    pow2: Option<(u32, u64)>,
    tick: u64,
}

impl CacheArray {
    /// Creates an empty array with `num_sets` sets of `ways` ways.
    ///
    /// Lines arriving at a banked array are already bank-filtered (all have
    /// the same `line % banks`); `bank_stride` is that bank count, folded
    /// out of the line index before set selection. Use `1` for an unbanked
    /// array.
    ///
    /// # Panics
    /// Panics if `num_sets`, `ways` or `bank_stride` is zero.
    pub fn new(num_sets: u32, ways: u32, bank_stride: u32) -> CacheArray {
        assert!(num_sets > 0 && ways > 0, "cache must have sets and ways");
        assert!(bank_stride > 0, "bank stride must be positive");
        let pow2 = (bank_stride.is_power_of_two() && num_sets.is_power_of_two())
            .then(|| (bank_stride.trailing_zeros(), num_sets as u64 - 1));
        CacheArray {
            ways: vec![
                Way {
                    line: 0,
                    valid: false,
                    dirty: false,
                    lru: 0
                };
                num_sets as usize * ways as usize
            ],
            ways_per_set: ways,
            num_sets,
            bank_stride,
            pow2,
            tick: 0,
        }
    }

    #[inline]
    fn set_index(&self, line: u64) -> usize {
        match self.pow2 {
            Some((shift, mask)) => ((line >> shift) & mask) as usize,
            None => ((line / self.bank_stride as u64) % self.num_sets as u64) as usize,
        }
    }

    #[inline]
    fn set_range(&self, line: u64) -> std::ops::Range<usize> {
        let start = self.set_index(line) * self.ways_per_set as usize;
        start..start + self.ways_per_set as usize
    }

    /// Looks up a line; on hit, updates LRU and (if `mark_dirty`) the dirty
    /// bit. Returns whether the line was present.
    pub fn access(&mut self, line: u64, mark_dirty: bool) -> bool {
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_range(line);
        for way in &mut self.ways[range] {
            if way.valid && way.line == line {
                way.lru = tick;
                if mark_dirty {
                    way.dirty = true;
                }
                return true;
            }
        }
        false
    }

    /// Checks presence without touching LRU or dirty state.
    pub fn probe(&self, line: u64) -> bool {
        self.probe_way(line).is_some()
    }

    /// Checks presence without touching LRU or dirty state, returning the
    /// hit way's flat index so a later [`CacheArray::touch_way`] can skip
    /// the tag scan.
    #[inline]
    pub fn probe_way(&self, line: u64) -> Option<u32> {
        let range = self.set_range(line);
        let start = range.start;
        self.ways[range]
            .iter()
            .position(|w| w.valid && w.line == line)
            .map(|i| (start + i) as u32)
    }

    /// Completes a hit found by [`CacheArray::probe_way`]: updates LRU and
    /// (if `mark_dirty`) the dirty bit of the given way.
    ///
    /// # Panics
    /// Panics (or corrupts LRU state in release builds) if `way` did not
    /// come from a `probe_way` hit on this array with no intervening
    /// mutation.
    #[inline]
    pub fn touch_way(&mut self, line: u64, way: u32, mark_dirty: bool) {
        self.tick += 1;
        let w = &mut self.ways[way as usize];
        debug_assert!(w.valid && w.line == line, "touch_way on a stale probe");
        w.lru = self.tick;
        if mark_dirty {
            w.dirty = true;
        }
    }

    /// Installs a line (after a miss), evicting the LRU victim if the set is
    /// full. The new line's dirty bit is set from `dirty`.
    pub fn fill(&mut self, line: u64, dirty: bool) -> Option<Eviction> {
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_range(line);
        let set = &mut self.ways[range];
        // If the line is somehow already present (e.g. a racing fill), just
        // refresh it.
        for way in set.iter_mut() {
            if way.valid && way.line == line {
                way.lru = tick;
                way.dirty |= dirty;
                return None;
            }
        }
        // Prefer an invalid way.
        if let Some(way) = set.iter_mut().find(|w| !w.valid) {
            *way = Way {
                line,
                valid: true,
                dirty,
                lru: tick,
            };
            return None;
        }
        // Evict LRU.
        let victim = set
            .iter_mut()
            .min_by_key(|w| w.lru)
            .expect("sets are never empty");
        let evicted = Eviction {
            line: victim.line,
            dirty: victim.dirty,
        };
        *victim = Way {
            line,
            valid: true,
            dirty,
            lru: tick,
        };
        Some(evicted)
    }

    /// Invalidates a line if present, returning whether it was dirty.
    pub fn invalidate(&mut self, line: u64) -> Option<bool> {
        let range = self.set_range(line);
        for way in &mut self.ways[range] {
            if way.valid && way.line == line {
                way.valid = false;
                return Some(way.dirty);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_math() {
        // The paper's L1: 64KB, 32 banks, 128B lines, 4-way.
        let g = CacheGeometry {
            size_bytes: 64 * 1024,
            line_bytes: 128,
            ways: 4,
            banks: 32,
        };
        assert_eq!(g.sets_per_bank(), 4);
        assert_eq!(g.line_of(256), 2);
        assert_eq!(g.bank_of(33), 1);
    }

    #[test]
    fn hit_after_fill() {
        let mut c = CacheArray::new(4, 2, 1);
        assert!(!c.access(10, false));
        assert_eq!(c.fill(10, false), None);
        assert!(c.access(10, false));
        assert!(c.probe(10));
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = CacheArray::new(1, 2, 1);
        c.fill(1, false);
        c.fill(2, false);
        c.access(1, false); // 2 is now LRU
        let ev = c.fill(3, false).unwrap();
        assert_eq!(ev.line, 2);
        assert!(!ev.dirty);
        assert!(c.probe(1) && c.probe(3) && !c.probe(2));
    }

    #[test]
    fn dirty_victims_are_reported() {
        let mut c = CacheArray::new(1, 1, 1);
        c.fill(1, false);
        c.access(1, true); // dirty it
        let ev = c.fill(2, false).unwrap();
        assert_eq!(
            ev,
            Eviction {
                line: 1,
                dirty: true
            }
        );
    }

    #[test]
    fn fill_of_present_line_is_idempotent() {
        let mut c = CacheArray::new(1, 2, 1);
        c.fill(1, true);
        assert_eq!(c.fill(1, false), None);
        let ev = c.fill(2, false);
        assert_eq!(ev, None);
        // Line 1 must still be dirty.
        // Line 1 was refreshed before line 2 was installed, so it is LRU;
        // its dirty bit from the first fill must have survived the refresh.
        let ev = c.fill(3, false).unwrap();
        assert_eq!(
            ev,
            Eviction {
                line: 1,
                dirty: true
            }
        );
    }

    #[test]
    fn invalidate_reports_dirtiness() {
        let mut c = CacheArray::new(2, 1, 1);
        c.fill(4, true);
        assert_eq!(c.invalidate(4), Some(true));
        assert_eq!(c.invalidate(4), None);
        assert!(!c.probe(4));
    }

    #[test]
    #[should_panic(expected = "sets and ways")]
    fn zero_geometry_panics() {
        let _ = CacheArray::new(0, 1, 1);
    }
}
