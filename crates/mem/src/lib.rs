//! GPU memory hierarchy for the VGIW reproduction.
//!
//! Implements the paper's Table-1 memory system: a banked L1 (64KB, 32
//! banks, 128B lines, 4-way), an optional second L1-level port for the live
//! value cache, a shared 768KB 6-bank L2 and a 6-channel, 16-bank-per-channel
//! GDDR5 timing model. VGIW uses write-back/write-allocate L1 policies,
//! Fermi write-through/write-no-allocate (paper section 3.6).
//!
//! The hierarchy is timing-only: functional data lives in
//! `vgiw_ir::MemoryImage` inside the processor models. See [`MemSystem`]
//! for the request/response protocol.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod cache;
mod drain;
mod hierarchy;
mod stats;

pub use cache::{CacheArray, CacheGeometry, Eviction};
pub use drain::MemDrain;
pub use hierarchy::{
    AllocPolicy, BatchReq, Delivery, L1Config, MemSystem, MshrSnapshot, PortId, ReqId,
    ResponseSink, SharedConfig, WritePolicy,
};
pub use stats::{BatchStats, DramStats, LevelStats, MemPhases, MemStats};
