//! Access statistics, consumed by the reports and the energy model.

use vgiw_trace::Counters;

/// Counters for one cache level or port.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct LevelStats {
    /// Requests accepted (including MSHR merges).
    pub accesses: u64,
    /// Of which stores.
    pub stores: u64,
    /// Tag hits.
    pub hits: u64,
    /// Primary misses (one per in-flight line).
    pub misses: u64,
    /// Requests merged into an in-flight miss.
    pub mshr_merges: u64,
    /// Requests rejected (port backlog or MSHRs full); the client retried.
    pub rejects: u64,
    /// Lines installed.
    pub fills: u64,
    /// Dirty lines written back to the next level.
    pub writebacks: u64,
}

impl LevelStats {
    /// Exports every field into `out` under `<prefix>.<field>`
    /// (e.g. `vgiw.lvc.hits`).
    pub fn export_counters(&self, out: &mut Counters, prefix: &str) {
        let fields: [(&str, u64); 8] = [
            ("accesses", self.accesses),
            ("stores", self.stores),
            ("hits", self.hits),
            ("misses", self.misses),
            ("mshr_merges", self.mshr_merges),
            ("rejects", self.rejects),
            ("fills", self.fills),
            ("writebacks", self.writebacks),
        ];
        for (name, v) in fields {
            out.add_u64(&format!("{prefix}.{name}"), v);
        }
    }

    /// Hit rate over accepted requests that did a tag lookup.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            return 0.0;
        }
        self.hits as f64 / lookups as f64
    }
}

/// DRAM traffic counters.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct DramStats {
    /// Line reads.
    pub reads: u64,
    /// Line writes (write-through traffic and L2 writebacks).
    pub writes: u64,
}

/// Statistics for an entire [`crate::MemSystem`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MemStats {
    /// One entry per L1-level port (data L1 first, then e.g. the LVC).
    pub port: Vec<LevelStats>,
    /// The shared L2.
    pub l2: LevelStats,
    /// DRAM traffic.
    pub dram: DramStats,
}

impl MemStats {
    /// Zeroed statistics for `num_ports` L1-level ports.
    pub fn new(num_ports: usize) -> MemStats {
        MemStats {
            port: vec![LevelStats::default(); num_ports],
            l2: LevelStats::default(),
            dram: DramStats::default(),
        }
    }

    /// Exports the whole hierarchy into `out`: each L1-level port under
    /// `<machine>.<port_name>.*` (falling back to `port<i>` when unnamed),
    /// the L2 under `<machine>.l2.*` and DRAM under `<machine>.dram.*`.
    pub fn export_counters(&self, out: &mut Counters, machine: &str, port_names: &[&str]) {
        for (i, p) in self.port.iter().enumerate() {
            match port_names.get(i) {
                Some(name) => p.export_counters(out, &format!("{machine}.{name}")),
                None => p.export_counters(out, &format!("{machine}.port{i}")),
            }
        }
        self.l2.export_counters(out, &format!("{machine}.l2"));
        out.add_u64(&format!("{machine}.dram.reads"), self.dram.reads);
        out.add_u64(&format!("{machine}.dram.writes"), self.dram.writes);
    }

    /// The counters accumulated since `before` was captured (all fields).
    ///
    /// # Panics
    /// Panics if the port counts differ.
    pub fn delta_since(&self, before: &MemStats) -> MemStats {
        assert_eq!(self.port.len(), before.port.len(), "port count mismatch");
        let level = |a: &LevelStats, b: &LevelStats| LevelStats {
            accesses: a.accesses - b.accesses,
            stores: a.stores - b.stores,
            hits: a.hits - b.hits,
            misses: a.misses - b.misses,
            mshr_merges: a.mshr_merges - b.mshr_merges,
            rejects: a.rejects - b.rejects,
            fills: a.fills - b.fills,
            writebacks: a.writebacks - b.writebacks,
        };
        MemStats {
            port: self
                .port
                .iter()
                .zip(&before.port)
                .map(|(a, b)| level(a, b))
                .collect(),
            l2: level(&self.l2, &before.l2),
            dram: DramStats {
                reads: self.dram.reads - before.dram.reads,
                writes: self.dram.writes - before.dram.writes,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_zero() {
        let s = LevelStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        let s = LevelStats {
            hits: 3,
            misses: 1,
            ..LevelStats::default()
        };
        assert_eq!(s.hit_rate(), 0.75);
    }

    #[test]
    fn mem_stats_shape() {
        let s = MemStats::new(2);
        assert_eq!(s.port.len(), 2);
        assert_eq!(s.dram.reads, 0);
    }
}
