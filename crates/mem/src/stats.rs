//! Access statistics, consumed by the reports and the energy model.

use vgiw_trace::Counters;

/// Counters for one cache level or port.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct LevelStats {
    /// Requests accepted (including MSHR merges).
    pub accesses: u64,
    /// Of which stores.
    pub stores: u64,
    /// Tag hits.
    pub hits: u64,
    /// Primary misses (one per in-flight line).
    pub misses: u64,
    /// Requests merged into an in-flight miss.
    pub mshr_merges: u64,
    /// Requests rejected (port backlog or MSHRs full); the client retried.
    pub rejects: u64,
    /// Lines installed.
    pub fills: u64,
    /// Dirty lines written back to the next level.
    pub writebacks: u64,
    /// Accepted requests that queued behind a busy bank (arrived while the
    /// bank's port was still occupied by an earlier access).
    pub bank_conflicts: u64,
}

impl LevelStats {
    /// Exports every field into `out` under `<prefix>.<field>`
    /// (e.g. `vgiw.lvc.hits`).
    pub fn export_counters(&self, out: &mut Counters, prefix: &str) {
        let fields: [(&str, u64); 9] = [
            ("accesses", self.accesses),
            ("stores", self.stores),
            ("hits", self.hits),
            ("misses", self.misses),
            ("mshr_merges", self.mshr_merges),
            ("rejects", self.rejects),
            ("fills", self.fills),
            ("writebacks", self.writebacks),
            ("bank_conflicts", self.bank_conflicts),
        ];
        for (name, v) in fields {
            out.add_u64(&format!("{prefix}.{name}"), v);
        }
    }

    /// Hit rate over accepted requests that did a tag lookup.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            return 0.0;
        }
        self.hits as f64 / lookups as f64
    }
}

/// DRAM traffic counters.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct DramStats {
    /// Line reads.
    pub reads: u64,
    /// Line writes (write-through traffic and L2 writebacks).
    pub writes: u64,
}

/// Batch-intake statistics for [`crate::MemSystem::access_batch`].
///
/// The line-grouping pass (and therefore these counters) runs identically
/// on the fast and `reference_mem` paths, so the full counter registry
/// stays bit-identical between the two — only the replay strategy behind
/// the O(1) coalescing gate differs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct BatchStats {
    /// Non-empty batches submitted.
    pub batches: u64,
    /// Requests submitted through batches.
    pub requests: u64,
    /// Distinct cache lines across those batches.
    pub distinct_lines: u64,
    /// Requests that shared a line with an earlier request of the same
    /// batch (`requests - distinct_lines`).
    pub coalesced: u64,
    /// Histogram of distinct-lines-per-batch: buckets 1, 2–3, 4–7, 8–15,
    /// and 16+.
    pub line_hist: [u64; 5],
}

impl BatchStats {
    /// Histogram bucket labels, aligned with `line_hist`.
    pub const HIST_BUCKETS: [&'static str; 5] = ["1", "2_3", "4_7", "8_15", "16p"];

    /// Records one batch of `requests` requests touching `lines` distinct
    /// lines. Empty batches are not counted.
    pub fn record(&mut self, requests: u64, lines: u64) {
        if requests == 0 {
            return;
        }
        self.batches += 1;
        self.requests += requests;
        self.distinct_lines += lines;
        self.coalesced += requests - lines;
        let bucket = match lines {
            0..=1 => 0,
            2..=3 => 1,
            4..=7 => 2,
            8..=15 => 3,
            _ => 4,
        };
        self.line_hist[bucket] += 1;
    }

    /// Exports into `out` under `<prefix>.batches`, `.batch_requests`,
    /// `.batch_lines`, `.coalesced` and `.batch_lines_<bucket>`.
    pub fn export_counters(&self, out: &mut Counters, prefix: &str) {
        out.add_u64(&format!("{prefix}.batches"), self.batches);
        out.add_u64(&format!("{prefix}.batch_requests"), self.requests);
        out.add_u64(&format!("{prefix}.batch_lines"), self.distinct_lines);
        out.add_u64(&format!("{prefix}.coalesced"), self.coalesced);
        for (label, v) in Self::HIST_BUCKETS.iter().zip(self.line_hist) {
            out.add_u64(&format!("{prefix}.batch_lines_{label}"), v);
        }
    }

    fn delta_since(&self, before: &BatchStats) -> BatchStats {
        BatchStats {
            batches: self.batches - before.batches,
            requests: self.requests - before.requests,
            distinct_lines: self.distinct_lines - before.distinct_lines,
            coalesced: self.coalesced - before.coalesced,
            line_hist: std::array::from_fn(|i| self.line_hist[i] - before.line_hist[i]),
        }
    }
}

/// Wall-clock nanoseconds spent in the memory hierarchy's host-side
/// phases, mirroring the fabric's `TickPhases`. Only accumulated when
/// `time_phases` is enabled (a pure observer; simulated cycles are
/// unaffected).
///
/// `probe` (tag scans) is a *subset* of `intake` (whole request-acceptance
/// path), and `fill` (L1 line installs + writeback charging) is a subset
/// of `deliver` (whole event-dispatch tick), so total host time in the
/// hierarchy is `intake + deliver`.
///
/// One asymmetry to keep in mind when comparing engine modes: on the
/// zero-copy path delivery *is* the consumer's completion callback, so
/// `deliver` subsumes the client-side completion work that the buffered
/// reference path performs outside the hierarchy (and outside this
/// clock). `intake`/`probe` are bracketed identically in both modes and
/// are the like-for-like pair; subtracting the callback per response
/// would cost two `Instant` reads per delivery and distort the very
/// number it corrects.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct MemPhases {
    /// Request acceptance: grouping, MSHR merge, occupancy and latency
    /// math (includes `probe`).
    pub intake_ns: u64,
    /// Tag scans (subset of `intake`).
    pub probe_ns: u64,
    /// L1 fills and writeback charging (subset of `deliver`).
    pub fill_ns: u64,
    /// Per-cycle event dispatch: wheel drain, fills, response delivery
    /// (includes `fill`).
    pub deliver_ns: u64,
}

impl MemPhases {
    /// Exports into `out` as `<prefix>.{intake,probe,fill,deliver}_ns`.
    pub fn export_counters(&self, out: &mut Counters, prefix: &str) {
        out.add_u64(&format!("{prefix}.intake_ns"), self.intake_ns);
        out.add_u64(&format!("{prefix}.probe_ns"), self.probe_ns);
        out.add_u64(&format!("{prefix}.fill_ns"), self.fill_ns);
        out.add_u64(&format!("{prefix}.deliver_ns"), self.deliver_ns);
    }

    /// The nanoseconds accumulated since `before` was captured.
    pub fn delta_since(&self, before: &MemPhases) -> MemPhases {
        MemPhases {
            intake_ns: self.intake_ns - before.intake_ns,
            probe_ns: self.probe_ns - before.probe_ns,
            fill_ns: self.fill_ns - before.fill_ns,
            deliver_ns: self.deliver_ns - before.deliver_ns,
        }
    }

    /// Total host nanoseconds in the hierarchy (`intake + deliver`; the
    /// probe and fill phases are subsets of those).
    pub fn total_ns(&self) -> u64 {
        self.intake_ns + self.deliver_ns
    }
}

/// Statistics for an entire [`crate::MemSystem`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MemStats {
    /// One entry per L1-level port (data L1 first, then e.g. the LVC).
    pub port: Vec<LevelStats>,
    /// The shared L2.
    pub l2: LevelStats,
    /// DRAM traffic.
    pub dram: DramStats,
    /// Batch-intake coalescing statistics.
    pub batch: BatchStats,
}

impl MemStats {
    /// Zeroed statistics for `num_ports` L1-level ports.
    pub fn new(num_ports: usize) -> MemStats {
        MemStats {
            port: vec![LevelStats::default(); num_ports],
            l2: LevelStats::default(),
            dram: DramStats::default(),
            batch: BatchStats::default(),
        }
    }

    /// Exports the whole hierarchy into `out`: each L1-level port under
    /// `<machine>.<port_name>.*` (falling back to `port<i>` when unnamed),
    /// the L2 under `<machine>.l2.*`, DRAM under `<machine>.dram.*`, and
    /// an aggregate block under `<machine>.mem.*` (hits/misses/merges/
    /// bank conflicts summed over the L1-level ports and the L2, plus the
    /// batch-coalescing histogram).
    pub fn export_counters(&self, out: &mut Counters, machine: &str, port_names: &[&str]) {
        for (i, p) in self.port.iter().enumerate() {
            match port_names.get(i) {
                Some(name) => p.export_counters(out, &format!("{machine}.{name}")),
                None => p.export_counters(out, &format!("{machine}.port{i}")),
            }
        }
        self.l2.export_counters(out, &format!("{machine}.l2"));
        out.add_u64(&format!("{machine}.dram.reads"), self.dram.reads);
        out.add_u64(&format!("{machine}.dram.writes"), self.dram.writes);
        let levels = self.port.iter().chain(std::iter::once(&self.l2));
        let mut hits = 0;
        let mut misses = 0;
        let mut merges = 0;
        let mut conflicts = 0;
        for l in levels {
            hits += l.hits;
            misses += l.misses;
            merges += l.mshr_merges;
            conflicts += l.bank_conflicts;
        }
        let mem = format!("{machine}.mem");
        out.add_u64(&format!("{mem}.hits"), hits);
        out.add_u64(&format!("{mem}.misses"), misses);
        out.add_u64(&format!("{mem}.mshr_merges"), merges);
        out.add_u64(&format!("{mem}.bank_conflicts"), conflicts);
        self.batch.export_counters(out, &mem);
    }

    /// Writes every statistic as one snapshot section (checkpointed
    /// machines must resume with the exact cumulative counters, since
    /// launches report deltas against them).
    pub fn save(&self, w: &mut vgiw_snapshot::SnapshotWriter, name: &str) {
        let level = |w: &mut vgiw_snapshot::SnapshotWriter, s: &LevelStats| {
            w.u64_list(
                "level",
                &[
                    s.accesses,
                    s.stores,
                    s.hits,
                    s.misses,
                    s.mshr_merges,
                    s.rejects,
                    s.fills,
                    s.writebacks,
                    s.bank_conflicts,
                ],
            );
        };
        w.section(name);
        w.u64("ports", self.port.len() as u64);
        for p in &self.port {
            level(w, p);
        }
        level(w, &self.l2);
        w.u64_list("dram", &[self.dram.reads, self.dram.writes]);
        let b = &self.batch;
        w.u64_list(
            "batch",
            &[b.batches, b.requests, b.distinct_lines, b.coalesced],
        );
        w.u64_list("batch_hist", &b.line_hist);
        w.end_section();
    }

    /// Reads statistics written by [`MemStats::save`].
    ///
    /// # Errors
    /// Fails on a malformed section or a port-count mismatch.
    pub fn restore(
        r: &mut vgiw_snapshot::SnapshotReader<'_>,
        name: &str,
        num_ports: usize,
    ) -> Result<MemStats, vgiw_snapshot::SnapshotError> {
        let level = |r: &mut vgiw_snapshot::SnapshotReader<'_>| {
            let v = r.u64_list("level")?;
            if v.len() != 9 {
                return Err(vgiw_snapshot::SnapshotError::Corrupt {
                    detail: format!("level stats hold {} fields, expected 9", v.len()),
                });
            }
            Ok(LevelStats {
                accesses: v[0],
                stores: v[1],
                hits: v[2],
                misses: v[3],
                mshr_merges: v[4],
                rejects: v[5],
                fills: v[6],
                writebacks: v[7],
                bank_conflicts: v[8],
            })
        };
        r.section(name)?;
        let ports = r.u64("ports")? as usize;
        if ports != num_ports {
            return Err(vgiw_snapshot::SnapshotError::Incompatible {
                detail: format!("snapshot has {ports} memory ports, machine has {num_ports}"),
            });
        }
        let mut out = MemStats::new(ports);
        for p in &mut out.port {
            *p = level(r)?;
        }
        out.l2 = level(r)?;
        let dram = r.u64_list("dram")?;
        let batch = r.u64_list("batch")?;
        let hist = r.u64_list("batch_hist")?;
        if dram.len() != 2 || batch.len() != 4 || hist.len() != 5 {
            return Err(vgiw_snapshot::SnapshotError::Corrupt {
                detail: "dram/batch stats hold the wrong field counts".to_string(),
            });
        }
        out.dram = DramStats {
            reads: dram[0],
            writes: dram[1],
        };
        out.batch = BatchStats {
            batches: batch[0],
            requests: batch[1],
            distinct_lines: batch[2],
            coalesced: batch[3],
            line_hist: std::array::from_fn(|i| hist[i]),
        };
        r.end_section()?;
        Ok(out)
    }

    /// The counters accumulated since `before` was captured (all fields).
    ///
    /// # Panics
    /// Panics if the port counts differ.
    pub fn delta_since(&self, before: &MemStats) -> MemStats {
        assert_eq!(self.port.len(), before.port.len(), "port count mismatch");
        let level = |a: &LevelStats, b: &LevelStats| LevelStats {
            accesses: a.accesses - b.accesses,
            stores: a.stores - b.stores,
            hits: a.hits - b.hits,
            misses: a.misses - b.misses,
            mshr_merges: a.mshr_merges - b.mshr_merges,
            rejects: a.rejects - b.rejects,
            fills: a.fills - b.fills,
            writebacks: a.writebacks - b.writebacks,
            bank_conflicts: a.bank_conflicts - b.bank_conflicts,
        };
        MemStats {
            port: self
                .port
                .iter()
                .zip(&before.port)
                .map(|(a, b)| level(a, b))
                .collect(),
            l2: level(&self.l2, &before.l2),
            dram: DramStats {
                reads: self.dram.reads - before.dram.reads,
                writes: self.dram.writes - before.dram.writes,
            },
            batch: self.batch.delta_since(&before.batch),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_zero() {
        let s = LevelStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        let s = LevelStats {
            hits: 3,
            misses: 1,
            ..LevelStats::default()
        };
        assert_eq!(s.hit_rate(), 0.75);
    }

    #[test]
    fn mem_stats_shape() {
        let s = MemStats::new(2);
        assert_eq!(s.port.len(), 2);
        assert_eq!(s.dram.reads, 0);
    }

    #[test]
    fn batch_histogram_buckets() {
        let mut b = BatchStats::default();
        b.record(0, 0); // empty batches are ignored
        b.record(8, 1);
        b.record(8, 3);
        b.record(8, 4);
        b.record(16, 15);
        b.record(32, 16);
        assert_eq!(b.batches, 5);
        assert_eq!(b.requests, 72);
        assert_eq!(b.distinct_lines, 39);
        assert_eq!(b.coalesced, 72 - 39);
        assert_eq!(b.line_hist, [1, 1, 1, 1, 1]);
        let d = b.delta_since(&BatchStats::default());
        assert_eq!(d, b);
    }

    #[test]
    fn aggregate_mem_counters() {
        let mut s = MemStats::new(1);
        s.port[0].hits = 5;
        s.port[0].bank_conflicts = 2;
        s.l2.hits = 3;
        s.l2.misses = 1;
        s.batch.record(4, 2);
        let mut out = Counters::new();
        s.export_counters(&mut out, "m", &["l1"]);
        assert_eq!(out.get_u64("m.mem.hits"), 8);
        assert_eq!(out.get_u64("m.mem.misses"), 1);
        assert_eq!(out.get_u64("m.mem.bank_conflicts"), 2);
        assert_eq!(out.get_u64("m.mem.coalesced"), 2);
        assert_eq!(out.get_u64("m.mem.batch_lines_2_3"), 1);
    }
}
