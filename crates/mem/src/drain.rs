//! The shared per-cycle memory response drain.
//!
//! Before this module existed, VGIW, SGMF and SIMT each carried the same
//! boilerplate in their run loops: tick the hierarchy, drain the response
//! queue into a scratch vector, apply the [`ResponseTamper`] fault plan,
//! emit `MemResponse` trace events, then hand each id to the machine's
//! completion handler. [`MemDrain`] centralizes that sequence and, on the
//! fast path, removes the queue round-trip entirely: responses are
//! delivered zero-copy through [`MemSystem::tick_deliver`]
//! straight into the machine's completion closure, with tampering and
//! tracing applied per delivery in stream order.

use crate::{Delivery, MemSystem, ReqId, ResponseSink};
use vgiw_robust::ResponseTamper;
use vgiw_trace::{TraceEvent, Tracer};

/// Drives one memory-hierarchy cycle and routes completed requests into a
/// machine's completion handler, deduplicating the per-machine drain
/// boilerplate (tick → drain → tamper → trace → deliver).
///
/// Two modes, chosen per call:
/// * **zero-copy** (`reference = false`): [`MemSystem::tick_deliver`]
///   pushes each completion straight into the closure; the tamper plan is
///   applied in streaming form ([`ResponseTamper::copies_for_next`]).
/// * **buffered** (`reference = true`): the historical queue round-trip —
///   tick, drain into an internal buffer, [`ResponseTamper::apply`], then
///   replay. Kept as the oracle behind the `reference_mem` knob.
///
/// Both modes deliver the same responses in the same order, emit the same
/// trace events, and stop delivering at the first handler error (the
/// machine is about to reset; remaining completions die with it).
pub struct MemDrain {
    tamper: ResponseTamper,
    buf: Vec<ReqId>,
}

struct Sink<'a, E, F: FnMut(ReqId) -> Result<(), E>> {
    tamper: &'a mut ResponseTamper,
    tracer: &'a Tracer,
    trace_cycle: u64,
    deliver: F,
    delivered: usize,
    err: Option<E>,
}

impl<E, F: FnMut(ReqId) -> Result<(), E>> ResponseSink for Sink<'_, E, F> {
    fn deliver(&mut self, d: Delivery) {
        if self.err.is_some() {
            // A violation is already latched; the machine will reset.
            return;
        }
        for _ in 0..self.tamper.copies_for_next() {
            self.delivered += 1;
            self.tracer
                .emit(self.trace_cycle, || TraceEvent::MemResponse { id: d.id });
            if let Err(e) = (self.deliver)(d.id) {
                self.err = Some(e);
                return;
            }
        }
    }
}

impl MemDrain {
    /// Creates a drain with the given fault plan (use
    /// `ResponseTamper::default()` for none).
    pub fn new(tamper: ResponseTamper) -> MemDrain {
        MemDrain {
            tamper,
            buf: Vec::new(),
        }
    }

    /// Ticks `mem` one cycle and feeds every completed request id to
    /// `deliver`, in completion order. `trace_cycle` stamps the
    /// `MemResponse` trace events (machines pass their own clock, which
    /// the hierarchy tick does not advance). Returns how many responses
    /// were delivered (after tampering — the machine's progress signal),
    /// or the first error `deliver` produced, after which no further
    /// responses are handed out.
    pub fn cycle<E>(
        &mut self,
        mem: &mut MemSystem,
        tracer: &Tracer,
        trace_cycle: u64,
        reference: bool,
        deliver: impl FnMut(ReqId) -> Result<(), E>,
    ) -> Result<usize, E> {
        if reference {
            self.cycle_buffered(mem, tracer, trace_cycle, deliver)
        } else {
            let mut sink = Sink {
                tamper: &mut self.tamper,
                tracer,
                trace_cycle,
                deliver,
                delivered: 0,
                err: None,
            };
            mem.tick_deliver(&mut sink);
            match sink.err {
                Some(e) => Err(e),
                None => Ok(sink.delivered),
            }
        }
    }

    fn cycle_buffered<E>(
        &mut self,
        mem: &mut MemSystem,
        tracer: &Tracer,
        trace_cycle: u64,
        mut deliver: impl FnMut(ReqId) -> Result<(), E>,
    ) -> Result<usize, E> {
        mem.tick();
        mem.drain_responses_into(&mut self.buf);
        self.tamper.apply(&mut self.buf);
        if tracer.enabled() {
            for &id in &self.buf {
                tracer.emit(trace_cycle, || TraceEvent::MemResponse { id });
            }
        }
        let n = self.buf.len();
        for i in 0..n {
            let id = self.buf[i];
            if let Err(e) = deliver(id) {
                self.buf.clear();
                return Err(e);
            }
        }
        self.buf.clear();
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{L1Config, SharedConfig};

    fn mem() -> MemSystem {
        MemSystem::new(vec![L1Config::vgiw_l1()], SharedConfig::fermi_like())
    }

    /// Runs the same request schedule through a zero-copy drain and a
    /// buffered (reference) drain with identical tamper plans; the
    /// delivered streams must match per cycle.
    fn assert_modes_agree(tamper: ResponseTamper) {
        let mut fast_mem = mem();
        let mut ref_mem = mem();
        ref_mem.set_reference(true);
        let mut fast_drain = MemDrain::new(tamper);
        let mut ref_drain = MemDrain::new(tamper);
        let tracer = Tracer::off();
        let mut next_id = 0u64;
        for cycle in 0..600u64 {
            if cycle % 3 == 0 {
                let addr = (cycle % 97) as u32 * 3;
                let store = cycle % 5 == 0;
                let a = fast_mem.access(0, addr, store, next_id);
                let b = ref_mem.access(0, addr, store, next_id);
                assert_eq!(a, b);
                next_id += 1;
            }
            let mut fast_seen = Vec::new();
            let mut ref_seen = Vec::new();
            let nf: Result<usize, ()> =
                fast_drain.cycle(&mut fast_mem, &tracer, cycle, false, |id| {
                    fast_seen.push(id);
                    Ok(())
                });
            let nr: Result<usize, ()> = ref_drain.cycle(&mut ref_mem, &tracer, cycle, true, |id| {
                ref_seen.push(id);
                Ok(())
            });
            assert_eq!(fast_seen, ref_seen, "cycle {cycle}");
            assert_eq!(nf, nr, "cycle {cycle}");
            assert_eq!(nf.unwrap(), fast_seen.len());
        }
    }

    #[test]
    fn zero_copy_drain_matches_buffered() {
        assert_modes_agree(ResponseTamper::default());
    }

    #[test]
    fn tamper_plans_stream_identically() {
        assert_modes_agree(ResponseTamper::drop(5));
        assert_modes_agree(ResponseTamper::duplicate(0));
        assert_modes_agree(ResponseTamper::duplicate(17));
    }

    #[test]
    fn first_error_stops_delivery() {
        let mut m = mem();
        // Three same-line loads complete on the same cycle.
        assert!(m.access(0, 0, false, 1));
        assert!(m.access(0, 1, false, 2));
        assert!(m.access(0, 2, false, 3));
        let mut drain = MemDrain::new(ResponseTamper::default());
        let tracer = Tracer::off();
        let mut seen = Vec::new();
        loop {
            let r = drain.cycle(&mut m, &tracer, 0, false, |id| {
                seen.push(id);
                if id == 2 {
                    Err("boom")
                } else {
                    Ok(())
                }
            });
            match r {
                Ok(_) if !m.is_idle() => continue,
                Ok(_) => panic!("error should have surfaced"),
                Err(e) => {
                    assert_eq!(e, "boom");
                    break;
                }
            }
        }
        assert_eq!(
            seen,
            vec![1, 2],
            "id 3 must not be delivered after the error"
        );
    }
}
