//! Full-suite equivalence of the batch-coalesced zero-copy memory fast
//! path against the retained per-request reference path: for every app
//! and all three machines, forcing `reference_mem` must change nothing
//! observable — results, per-app statistics, and the complete counter
//! registry (energy, fabric stats, memory traffic, batch histograms) are
//! bit-identical. This is the suite-level guarantee behind ci.sh's forced
//! `--reference-mem` golden pass.
//!
//! Lives in the mem crate (as a dev-dependency cycle through vgiw-bench,
//! which Cargo permits) so the oracle travels with the code it checks.

use vgiw_bench::harness::{run_machine_tuned, MachineKind, MachineTuning};
use vgiw_robust::ChecksConfig;
use vgiw_trace::Tracer;

fn assert_machine_matches_reference_mem(kind: MachineKind) {
    for bench in vgiw_kernels::suite(1) {
        let fast = run_machine_tuned(
            &bench,
            kind,
            ChecksConfig::default(),
            &Tracer::off(),
            MachineTuning::default(),
        );
        let reference = run_machine_tuned(
            &bench,
            kind,
            ChecksConfig::default(),
            &Tracer::off(),
            MachineTuning {
                reference_mem: true,
                ..MachineTuning::default()
            },
        );

        match (fast.outcome.ok(), reference.outcome.ok()) {
            (Some(f), Some(r)) => {
                assert_eq!(
                    f,
                    r,
                    "{}/{}: memory fast path diverges from the reference path",
                    kind.name(),
                    bench.app
                );
            }
            // A skip (SGMF unmappability) must be path-independent.
            (None, None) => {
                assert_eq!(
                    fast.outcome.failure(),
                    reference.outcome.failure(),
                    "{}/{}: outcomes diverge",
                    kind.name(),
                    bench.app
                );
            }
            _ => panic!(
                "{}/{}: one memory path completed and the other did not",
                kind.name(),
                bench.app
            ),
        }
        assert_eq!(
            fast.counters,
            reference.counters,
            "{}/{}: counter registries diverge between memory paths",
            kind.name(),
            bench.app
        );
    }
}

#[test]
fn vgiw_suite_matches_reference_mem() {
    assert_machine_matches_reference_mem(MachineKind::Vgiw);
}

#[test]
fn simt_suite_matches_reference_mem() {
    assert_machine_matches_reference_mem(MachineKind::Simt);
}

#[test]
fn sgmf_suite_matches_reference_mem() {
    assert_machine_matches_reference_mem(MachineKind::Sgmf);
}
