//! Mid-flight checkpoint fidelity for the memory hierarchy: a restored
//! `MemSystem` must continue bit-identically to the instance it was saved
//! from — same response order and timing, same statistics, same pending
//! events — and re-saving a restored instance must reproduce the snapshot
//! byte for byte.

use vgiw_mem::{BatchReq, L1Config, MemSystem, SharedConfig};
use vgiw_snapshot::{SnapshotReader, SnapshotWriter};

fn mk() -> MemSystem {
    MemSystem::new(
        vec![L1Config::vgiw_l1(), L1Config::lvc()],
        SharedConfig::fermi_like(),
    )
}

/// Drives a deterministic mixed workload that leaves the hierarchy deep
/// mid-flight: outstanding MSHRs, wheel events, overflow-heap events
/// (DRAM round trips exceed the wheel horizon) and undrained responses.
fn drive_prefix(mem: &mut MemSystem) {
    let mut id = 0u64;
    for step in 0..48u32 {
        let reqs: Vec<BatchReq> = (0..8u32)
            .map(|i| {
                id += 1;
                BatchReq {
                    addr_words: step * 96 + i * 7,
                    is_store: (step + i) % 3 == 0,
                    id,
                }
            })
            .collect();
        mem.access_batch(0, &reqs);
        mem.access(1, step * 13, false, 1_000_000 + step as u64);
        mem.tick();
    }
    assert!(!mem.is_idle(), "workload must leave requests in flight");
    assert!(
        !mem.mshr_snapshot().is_empty(),
        "workload must leave MSHRs outstanding"
    );
}

fn save(mem: &MemSystem) -> Vec<u8> {
    let mut w = SnapshotWriter::new();
    mem.save_state(&mut w, "mem");
    w.finish()
}

fn restore(mem: &mut MemSystem, bytes: &[u8]) {
    let mut r = SnapshotReader::new(bytes).expect("header");
    mem.restore_state(&mut r, "mem").expect("restore");
    assert!(r.at_end());
}

/// Continues a hierarchy to quiescence, logging every response with its
/// arrival cycle, plus issuing a second wave of traffic part-way to check
/// intake state (busy-untils, MSHR occupancy) was restored too.
fn continue_and_log(mem: &mut MemSystem) -> Vec<(u64, Vec<u64>)> {
    let mut log = Vec::new();
    let mut id = 500_000u64;
    for step in 0..32u32 {
        id += 1;
        mem.access(0, 9_000 + step * 5, step % 2 == 0, id);
        mem.tick();
        let resp = mem.drain_responses();
        if !resp.is_empty() {
            log.push((mem.now(), resp));
        }
    }
    let mut guard = 0u32;
    while !mem.is_idle() {
        mem.tick();
        let resp = mem.drain_responses();
        if !resp.is_empty() {
            log.push((mem.now(), resp));
        }
        guard += 1;
        assert!(guard < 100_000, "hierarchy failed to drain");
    }
    log
}

#[test]
fn restore_then_resave_is_byte_identical() {
    let mut a = mk();
    drive_prefix(&mut a);
    let snap = save(&a);

    let mut b = mk();
    restore(&mut b, &snap);
    assert_eq!(save(&b), snap, "save -> restore -> save must be stable");
}

#[test]
fn restored_hierarchy_continues_bit_identically() {
    let mut a = mk();
    drive_prefix(&mut a);
    let snap = save(&a);

    let mut b = mk();
    restore(&mut b, &snap);

    let log_a = continue_and_log(&mut a);
    let log_b = continue_and_log(&mut b);
    assert_eq!(log_a, log_b, "response timing and order must match");
    assert_eq!(
        save(&a),
        save(&b),
        "final state (caches, stats, clock) must match"
    );
}

#[test]
fn restore_rejects_mismatched_geometry() {
    let mut a = mk();
    drive_prefix(&mut a);
    let snap = save(&a);

    // One port instead of two: must be detected, not silently mangled.
    let mut b = MemSystem::new(vec![L1Config::vgiw_l1()], SharedConfig::fermi_like());
    let mut r = SnapshotReader::new(&snap).expect("header");
    assert!(b.restore_state(&mut r, "mem").is_err());
}

#[test]
fn wedge_fault_refuses_after_budget() {
    let mut mem = mk();
    mem.set_wedge_after(Some(5));
    let mut accepted = 0;
    for i in 0..10u64 {
        if mem.access(0, (i * 1024) as u32, false, i) {
            accepted += 1;
        }
        mem.tick();
    }
    assert_eq!(accepted, 5, "exactly the budgeted requests are accepted");
    // The wedge survives a save/restore round trip (chaos recovery
    // checkpoints capture fault-plan progress).
    let snap = save(&mem);
    let mut back = mk();
    restore(&mut back, &snap);
    assert!(!back.access(0, 0, false, 99));
    back.set_wedge_after(None);
    assert!(back.access(0, 0, false, 99));
}
