//! The fuzzer's generator (`vgiw-gen`) draws from a wider grammar than
//! `property_compile.rs` — data-dependent loops, if/else with live values
//! crossing both arms, select chains — and the compiler must lower every
//! shape it emits. This test pins that contract from the compiler's side:
//! every generated kernel compiles to a legal, capacity-respecting
//! mapping, and block splitting preserves interpreter semantics on the
//! case's own generated inputs.

use vgiw_compiler::{compile, GridSpec};
use vgiw_gen::FuzzCase;
use vgiw_ir::interp;

#[test]
fn generated_fuzz_kernels_compile_legally_and_split_faithfully() {
    let grid = GridSpec::paper();
    let capacity = grid.capacity();
    let mut loops = 0;
    for index in 0..60u64 {
        let case = FuzzCase::generate(0x5EED_CAFE, index);
        let kernel = case.program.emit();
        if kernel.num_blocks() > 1 {
            loops += 1;
        }
        let ck =
            compile(&kernel, &grid).unwrap_or_else(|e| panic!("case {index}: compile failed: {e}"));
        for cb in &ck.blocks {
            cb.dfg.assert_valid();
            assert!(
                cb.dfg.kind_counts().fits_in(&capacity),
                "case {index}: block exceeds grid capacity"
            );
            assert!(cb.num_replicas() >= 1, "case {index}: no replicas");
        }
        // The split/renumbered kernel must be observationally identical on
        // the generated launch and memory image.
        let launch = case.launch();
        let mut m1 = case.memory();
        interp::run(&kernel, &launch, &mut m1).expect("original kernel interprets");
        let mut m2 = case.memory();
        interp::run(&ck.kernel, &launch, &mut m2).expect("split kernel interprets");
        assert!(m1 == m2, "case {index}: splitting changed semantics");
    }
    // The sweep must actually exercise multi-block control flow, or the
    // test is vacuous.
    assert!(loops > 20, "only {loops}/60 cases had control flow");
}
