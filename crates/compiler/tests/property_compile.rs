//! Property tests for the compiler: random structured kernels must always
//! compile to legal, capacity-respecting, acyclic mappings, and splitting
//! must preserve interpreter semantics.

use proptest::prelude::*;
use vgiw_compiler::{compile, GridSpec};
use vgiw_ir::{interp, BinaryOp, Kernel, KernelBuilder, Launch, MemoryImage, Val, Word};

#[derive(Clone, Debug)]
enum Op {
    Arith(u8, usize, usize),
    Load(usize),
    Store(usize, usize),
    If(usize, Vec<Op>),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let leaf = prop_oneof![
        (0u8..8, any::<usize>(), any::<usize>()).prop_map(|(o, a, b)| Op::Arith(o, a, b)),
        any::<usize>().prop_map(Op::Load),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Op::Store(a, b)),
    ];
    leaf.prop_recursive(2, 16, 4, |inner| {
        (any::<usize>(), prop::collection::vec(inner, 1..5))
            .prop_map(|(c, body)| Op::If(c, body))
    })
}

fn build(ops: &[Op]) -> Kernel {
    fn emit(b: &mut KernelBuilder, tid: Val, ops: &[Op], pool: &mut Vec<Val>) {
        for op in ops {
            match op {
                Op::Arith(o, x, y) => {
                    let ops = [
                        BinaryOp::Add,
                        BinaryOp::Sub,
                        BinaryOp::Mul,
                        BinaryOp::Xor,
                        BinaryOp::FAdd,
                        BinaryOp::FMul,
                        BinaryOp::MinU,
                        BinaryOp::ShrL,
                    ];
                    let l = pool[x % pool.len()];
                    let r = pool[y % pool.len()];
                    let v = b.binary(ops[*o as usize % ops.len()], l, r);
                    pool.push(v);
                }
                Op::Load(a) => {
                    let addr0 = pool[a % pool.len()];
                    let hi = b.const_u32(0x80);
                    let h = b.and(addr0, hi);
                    let lo = b.const_u32(0x3F);
                    let l = b.and(tid, lo);
                    let addr = b.or(h, l);
                    let v = b.load(addr);
                    pool.push(v);
                }
                Op::Store(a, v) => {
                    let addr0 = pool[a % pool.len()];
                    let hi = b.const_u32(0x80);
                    let h = b.and(addr0, hi);
                    let lo = b.const_u32(0x3F);
                    let l = b.and(tid, lo);
                    let addr = b.or(h, l);
                    let val = pool[v % pool.len()];
                    b.store(addr, val);
                }
                Op::If(c, body) => {
                    let cv = pool[c % pool.len()];
                    let one = b.const_u32(1);
                    let bit = b.and(cv, one);
                    let mut inner = pool.clone();
                    b.if_(bit, |b| emit(b, tid, body, &mut inner));
                }
            }
        }
    }
    let mut b = KernelBuilder::new("prop", 1);
    let tid = b.thread_id();
    let base = b.param(0);
    let mut pool = vec![tid, base];
    emit(&mut b, tid, ops, &mut pool);
    let last = *pool.last().expect("non-empty");
    let m = b.const_u32(0x3F);
    let a = b.and(tid, m);
    b.store(a, last);
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    #[test]
    fn random_kernels_compile_legally(ops in prop::collection::vec(op_strategy(), 1..24)) {
        let kernel = build(&ops);
        let grid = GridSpec::paper();
        let capacity = grid.capacity();
        let ck = compile(&kernel, &grid).expect("compiles");
        for cb in &ck.blocks {
            cb.dfg.assert_valid();
            prop_assert!(cb.dfg.kind_counts().fits_in(&capacity));
            prop_assert!(cb.num_replicas() >= 1);
        }
        // Split + renumbered kernel preserves semantics.
        let launch = Launch::new(17, vec![Word::from_u32(128)]);
        let mut m1 = MemoryImage::new(256);
        interp::run(&kernel, &launch, &mut m1).expect("orig");
        let mut m2 = MemoryImage::new(256);
        interp::run(&ck.kernel, &launch, &mut m2).expect("split");
        prop_assert!(m1 == m2, "splitting changed semantics");
    }
}
