//! Property tests for the compiler: random structured kernels must always
//! compile to legal, capacity-respecting, acyclic mappings, and splitting
//! must preserve interpreter semantics.
//!
//! Randomness comes from the workspace's own deterministic SplitMix64
//! generator (no external proptest dependency — the CI sandbox builds
//! offline), so every failure is reproducible from the printed seed.

use vgiw_compiler::{compile, GridSpec};
use vgiw_ir::{interp, BinaryOp, Kernel, KernelBuilder, Launch, MemoryImage, Val, Word};
use vgiw_kernels::util::SplitMix64;

#[derive(Clone, Debug)]
enum Op {
    Arith(u8, usize, usize),
    Load(usize),
    Store(usize, usize),
    If(usize, Vec<Op>),
}

/// Generates a random op list shaped like the old proptest strategy:
/// arithmetic/load/store leaves plus up to `depth` levels of nested `if`s.
fn gen_ops(r: &mut SplitMix64, len: usize, depth: u32) -> Vec<Op> {
    (0..len)
        .map(|_| {
            let roll = r.gen_range_u32(if depth > 0 { 4 } else { 3 });
            match roll {
                0 => Op::Arith(
                    r.next_u32() as u8,
                    r.next_u32() as usize,
                    r.next_u32() as usize,
                ),
                1 => Op::Load(r.next_u32() as usize),
                2 => Op::Store(r.next_u32() as usize, r.next_u32() as usize),
                _ => {
                    let body_len = 1 + r.gen_range_u32(4) as usize;
                    Op::If(r.next_u32() as usize, gen_ops(r, body_len, depth - 1))
                }
            }
        })
        .collect()
}

fn build(ops: &[Op]) -> Kernel {
    fn emit(b: &mut KernelBuilder, tid: Val, ops: &[Op], pool: &mut Vec<Val>) {
        for op in ops {
            match op {
                Op::Arith(o, x, y) => {
                    let ops = [
                        BinaryOp::Add,
                        BinaryOp::Sub,
                        BinaryOp::Mul,
                        BinaryOp::Xor,
                        BinaryOp::FAdd,
                        BinaryOp::FMul,
                        BinaryOp::MinU,
                        BinaryOp::ShrL,
                    ];
                    let l = pool[x % pool.len()];
                    let r = pool[y % pool.len()];
                    let v = b.binary(ops[*o as usize % ops.len()], l, r);
                    pool.push(v);
                }
                Op::Load(a) => {
                    let addr0 = pool[a % pool.len()];
                    let hi = b.const_u32(0x80);
                    let h = b.and(addr0, hi);
                    let lo = b.const_u32(0x3F);
                    let l = b.and(tid, lo);
                    let addr = b.or(h, l);
                    let v = b.load(addr);
                    pool.push(v);
                }
                Op::Store(a, v) => {
                    let addr0 = pool[a % pool.len()];
                    let hi = b.const_u32(0x80);
                    let h = b.and(addr0, hi);
                    let lo = b.const_u32(0x3F);
                    let l = b.and(tid, lo);
                    let addr = b.or(h, l);
                    let val = pool[v % pool.len()];
                    b.store(addr, val);
                }
                Op::If(c, body) => {
                    let cv = pool[c % pool.len()];
                    let one = b.const_u32(1);
                    let bit = b.and(cv, one);
                    let mut inner = pool.clone();
                    b.if_(bit, |b| emit(b, tid, body, &mut inner));
                }
            }
        }
    }
    let mut b = KernelBuilder::new("prop", 1);
    let tid = b.thread_id();
    let base = b.param(0);
    let mut pool = vec![tid, base];
    emit(&mut b, tid, ops, &mut pool);
    let last = *pool.last().expect("non-empty");
    let m = b.const_u32(0x3F);
    let a = b.and(tid, m);
    b.store(a, last);
    b.finish()
}

#[test]
fn random_kernels_compile_legally() {
    let grid = GridSpec::paper();
    let capacity = grid.capacity();
    for case in 0..48u64 {
        let seed = 0xC0FFEE ^ (case * 0x9E37_79B9);
        let mut r = SplitMix64::new(seed);
        let len = 1 + r.gen_range_u32(23) as usize;
        let ops = gen_ops(&mut r, len, 2);
        let kernel = build(&ops);
        let ck =
            compile(&kernel, &grid).unwrap_or_else(|e| panic!("seed {seed}: compile failed: {e}"));
        for cb in &ck.blocks {
            cb.dfg.assert_valid();
            assert!(
                cb.dfg.kind_counts().fits_in(&capacity),
                "seed {seed}: block exceeds grid capacity"
            );
            assert!(cb.num_replicas() >= 1, "seed {seed}: no replicas");
        }
        // Split + renumbered kernel preserves semantics.
        let launch = Launch::new(17, vec![Word::from_u32(128)]);
        let mut m1 = MemoryImage::new(256);
        interp::run(&kernel, &launch, &mut m1).expect("orig");
        let mut m2 = MemoryImage::new(256);
        interp::run(&ck.kernel, &launch, &mut m2).expect("split");
        assert!(m1 == m2, "seed {seed}: splitting changed semantics");
    }
}
