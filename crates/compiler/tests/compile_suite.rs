//! Compiler invariants over every kernel of the benchmark suite: all
//! blocks fit the grid, placements are legal and disjoint, DFGs validate,
//! and the scheduling order property holds.

use vgiw_compiler::{compile, GridSpec, UNIT_KINDS};

#[test]
fn every_suite_kernel_compiles_with_legal_mappings() {
    let grid = GridSpec::paper();
    let capacity = grid.capacity();
    for bench in vgiw_kernels::suite(1) {
        for kernel in &bench.kernels {
            let ck = compile(kernel, &grid)
                .unwrap_or_else(|e| panic!("{}/{} failed: {e}", bench.app, kernel.name));
            assert_eq!(ck.blocks.len(), ck.kernel.num_blocks());
            for (i, cb) in ck.blocks.iter().enumerate() {
                cb.dfg.assert_valid();
                let counts = cb.dfg.kind_counts();
                assert!(
                    counts.fits_in(&capacity),
                    "{}/{} block {i} exceeds capacity: {counts}",
                    bench.app,
                    kernel.name
                );
                assert!(cb.num_replicas() >= 1);
                // Replicas occupy disjoint, kind-compatible units.
                let mut used = std::collections::HashSet::new();
                for r in &cb.replicas {
                    for (n, &u) in r.node_unit.iter().enumerate() {
                        assert!(used.insert(u), "unit reuse in {}", kernel.name);
                        assert_eq!(
                            grid.kind(u),
                            cb.dfg.nodes[n].op.unit_kind(),
                            "kind mismatch in {}",
                            kernel.name
                        );
                    }
                }
                // Total replica usage also fits the grid.
                let mut total = vgiw_compiler::KindCounts::default();
                for _ in 0..cb.num_replicas() {
                    for kind in UNIT_KINDS {
                        total.add(kind, counts.get(kind));
                    }
                }
                assert!(total.fits_in(&capacity));
            }
            // Every control edge targets a block that exists.
            for (id, block) in ck.kernel.iter_blocks() {
                for succ in block.term.successors() {
                    assert!(
                        succ.index() < ck.kernel.num_blocks(),
                        "{}: edge {id} -> {succ} leaves the kernel",
                        kernel.name
                    );
                }
            }
        }
    }
}

#[test]
fn compilation_is_deterministic() {
    let grid = GridSpec::paper();
    let kernel = vgiw_kernels::cfd::compute_flux_kernel();
    let a = compile(&kernel, &grid).unwrap();
    let b = compile(&kernel, &grid).unwrap();
    assert_eq!(a.kernel, b.kernel);
    assert_eq!(a.blocks.len(), b.blocks.len());
    for (x, y) in a.blocks.iter().zip(&b.blocks) {
        assert_eq!(x.dfg, y.dfg);
        assert_eq!(x.replicas.len(), y.replicas.len());
        for (p, q) in x.replicas.iter().zip(&y.replicas) {
            assert_eq!(p.node_unit, q.node_unit);
        }
    }
}

#[test]
fn live_value_ids_are_dense_and_consistent() {
    let grid = GridSpec::paper();
    for bench in vgiw_kernels::suite(1) {
        for kernel in &bench.kernels {
            let ck = compile(kernel, &grid).unwrap();
            let lv = &ck.liveness;
            let mut seen = vec![false; lv.num_live_values as usize];
            for slot in lv.slot_of_reg.iter().flatten() {
                assert!(slot.index() < lv.num_live_values as usize);
                seen[slot.index()] = true;
            }
            assert!(seen.iter().all(|&s| s), "live value IDs must be dense");
        }
    }
}
