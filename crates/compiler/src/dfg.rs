//! Per-basic-block dataflow graph construction.
//!
//! Each basic block becomes a *graph instruction word*: a DAG of operation
//! nodes whose edges are direct unit-to-unit token routes on the MT-CGRF.
//! Construction implements the paper's §3.1/§3.5 lowering:
//!
//! * registers local to the block become direct dataflow edges;
//! * registers crossing block boundaries become [`LvLoad`]/[`LvStore`]
//!   nodes talking to the live value cache ([`DfgOp::LvLoad`]);
//! * constants and kernel parameters fold into unit configuration
//!   registers (static operands);
//! * per-thread memory ordering (stores vs. earlier accesses) is enforced
//!   with split/join units, exactly as described for the SJUs;
//! * every replica gets one initiator CVU ([`DfgOp::Init`]) that emits the
//!   thread ID and one terminator CVU ([`DfgOp::Term`]) that resolves the
//!   next block;
//! * fanout beyond the interconnect degree is extended with split nodes.
//!
//! Every node fires **exactly once per thread**, which gives the fabric a
//! deterministic completion condition (all sink nodes fired).
//!
//! [`LvLoad`]: DfgOp::LvLoad
//! [`LvStore`]: DfgOp::LvStore

use crate::grid::UnitKind;
use crate::liveness::{LiveValueId, Liveness};
use std::collections::HashMap;
use vgiw_ir::{BinaryOp, BlockId, Inst, Kernel, OpClass, Operand, Reg, Terminator, UnaryOp, Word};

/// Maximum token-buffer operand ports per unit (paper §3.5: "up to three
/// operands").
pub const MAX_PORTS: usize = 3;

/// Maximum direct consumers of one producer before split nodes are needed
/// (each unit talks to its four nearest units/switch groups).
pub const MAX_FANOUT: usize = 4;

/// Index of a node within a [`Dfg`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node index as a usize.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A value feeding a node port: another node's output, or a static operand
/// baked into the consuming unit's configuration register.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ValSrc {
    /// The output of another node (a real token route).
    Node(NodeId),
    /// A compile-time immediate.
    Imm(Word),
    /// A launch parameter, resolved when the grid is configured.
    Param(u8),
}

impl ValSrc {
    /// The producing node, if this is a dynamic edge.
    pub fn node(self) -> Option<NodeId> {
        match self {
            ValSrc::Node(n) => Some(n),
            _ => None,
        }
    }

    /// Whether this port receives a token at runtime.
    pub fn is_dynamic(self) -> bool {
        matches!(self, ValSrc::Node(_))
    }
}

/// Branch targets of a terminator node.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TermTargets {
    /// Successor when the predicate is true (or the only successor).
    pub taken: Option<BlockId>,
    /// Successor when the predicate is false.
    pub not_taken: Option<BlockId>,
}

impl TermTargets {
    /// A terminator that ends the thread.
    pub const EXIT: TermTargets = TermTargets {
        taken: None,
        not_taken: None,
    };

    /// An unconditional jump.
    pub fn jump(to: BlockId) -> TermTargets {
        TermTargets {
            taken: Some(to),
            not_taken: None,
        }
    }

    /// A two-way branch.
    pub fn branch(taken: BlockId, not_taken: BlockId) -> TermTargets {
        TermTargets {
            taken: Some(taken),
            not_taken: Some(not_taken),
        }
    }
}

/// The operation a DFG node performs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DfgOp {
    /// One-operand ALU/FPU op. Ports: `[src]`.
    Unary(UnaryOp),
    /// Two-operand ALU/FPU op. Ports: `[lhs, rhs]`.
    Binary(BinaryOp),
    /// Conditional move. Ports: `[cond, on_true, on_false]`.
    Select,
    /// Float multiply-add. Ports: `[a, b, c]`.
    Fma,
    /// Global memory load. Ports: `[addr]`; optional trigger orders it
    /// after earlier stores.
    Load,
    /// Global memory store. Ports: `[addr, value]` or `[addr, value, gate]`;
    /// with a gate port, the store executes only if the gate token is
    /// nonzero (ordering joins always emit 1; SGMF predication gates with
    /// the block predicate).
    Store,
    /// Live value load from the LVC. Trigger-only (fires per thread).
    LvLoad(LiveValueId),
    /// Live value store to the LVC. Ports: `[value]`; optional trigger
    /// orders it after this block's `LvLoad` of the same slot.
    LvStore(LiveValueId),
    /// Thread initiator CVU: no inputs; its output token carries the
    /// thread ID.
    Init,
    /// Thread terminator CVU. Ports: `[cond]` for a branch, trigger-only
    /// otherwise.
    Term(TermTargets),
    /// Control join (SJU): emits `1` once all its 1–3 inputs arrived.
    Join,
    /// Pass-through join (SJU): emits port 0's value once all inputs
    /// arrived (merges a predicate with ordering tokens).
    JoinPass,
    /// Fanout extender (SJU): forwards its input token.
    Split,
}

impl DfgOp {
    /// The physical unit kind executing this operation.
    pub fn unit_kind(self) -> UnitKind {
        match self {
            DfgOp::Unary(op) => class_kind(op.class()),
            DfgOp::Binary(op) => class_kind(op.class()),
            DfgOp::Select | DfgOp::Fma => UnitKind::Alu,
            DfgOp::Load | DfgOp::Store => UnitKind::LdSt,
            DfgOp::LvLoad(_) | DfgOp::LvStore(_) => UnitKind::Lvu,
            DfgOp::Init | DfgOp::Term(_) => UnitKind::Cvu,
            DfgOp::Join | DfgOp::JoinPass | DfgOp::Split => UnitKind::SplitJoin,
        }
    }

    /// Whether the node has side effects / is a sink whose completion the
    /// fabric must track.
    pub fn is_sink(self) -> bool {
        matches!(self, DfgOp::Store | DfgOp::LvStore(_) | DfgOp::Term(_))
    }
}

fn class_kind(class: OpClass) -> UnitKind {
    match class {
        OpClass::IntAlu | OpClass::FpAlu => UnitKind::Alu,
        OpClass::Special => UnitKind::Scu,
    }
}

/// A node in a dataflow graph.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DfgNode {
    /// The operation.
    pub op: DfgOp,
    /// Semantic input ports, in operand order.
    pub inputs: Vec<ValSrc>,
    /// Optional ordering/firing trigger (a token whose value is ignored).
    pub trigger: Option<NodeId>,
    /// Static addends folded into a memory node's address computation —
    /// the paper's §3.5 "configuration registers that carry ... any static
    /// parameters". `addr = port0 + Σ offsets`, resolved at configure
    /// time. Only Load/Store nodes use this.
    pub offsets: Vec<ValSrc>,
}

impl DfgNode {
    /// Number of token-receiving ports (dynamic inputs plus trigger).
    pub fn dynamic_ports(&self) -> usize {
        self.inputs.iter().filter(|i| i.is_dynamic()).count() + usize::from(self.trigger.is_some())
    }

    /// Total ports occupied in the token buffer (all semantic inputs —
    /// static ones occupy configuration, not buffer — plus trigger). Used
    /// for the ≤ 3 port check.
    pub fn token_ports(&self) -> usize {
        self.dynamic_ports()
    }

    /// The port index tokens from `trigger` arrive on (one past the
    /// semantic dynamic ports).
    pub fn trigger_port(&self) -> u8 {
        self.inputs.len() as u8
    }
}

/// A dataflow graph for one basic block (or, for SGMF, a whole kernel).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Dfg {
    /// The source block, or `None` for an if-converted whole-kernel graph.
    pub block: Option<BlockId>,
    /// Nodes; [`NodeId`] indexes this vector.
    pub nodes: Vec<DfgNode>,
    /// The initiator node.
    pub init: NodeId,
    /// Terminator nodes. Exactly one for block DFGs; the if-converted SGMF
    /// graph also has exactly one (the exit).
    pub term: NodeId,
}

impl Dfg {
    /// Per-unit-kind node counts (for capacity checks and replication).
    pub fn kind_counts(&self) -> crate::grid::KindCounts {
        let mut c = crate::grid::KindCounts::default();
        for n in &self.nodes {
            c.add(n.op.unit_kind(), 1);
        }
        c
    }

    /// Consumer lists: for every node, the `(consumer, port)` pairs its
    /// output token is routed to. Port indices address the consumer's
    /// dynamic ports; the trigger arrives on [`DfgNode::trigger_port`].
    pub fn consumers(&self) -> Vec<Vec<(NodeId, u8)>> {
        let mut out = vec![Vec::new(); self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            let consumer = NodeId(i as u32);
            for (port, src) in node.inputs.iter().enumerate() {
                if let ValSrc::Node(p) = src {
                    out[p.index()].push((consumer, port as u8));
                }
            }
            if let Some(t) = node.trigger {
                out[t.index()].push((consumer, node.trigger_port()));
            }
        }
        out
    }

    /// Number of sink nodes (stores, LV stores, terminators): the per-thread
    /// completion count the fabric waits for.
    pub fn num_sinks(&self) -> u32 {
        self.nodes.iter().filter(|n| n.op.is_sink()).count() as u32
    }

    /// Longest path through the graph in nodes, a proxy for pipeline ramp
    /// depth. The graph is a DAG; this is computed by DP over a
    /// topological order.
    pub fn critical_path_len(&self) -> u32 {
        let consumers = self.consumers();
        let n = self.nodes.len();
        let mut indeg = vec![0u32; n];
        for cons in &consumers {
            for &(c, _) in cons {
                indeg[c.index()] += 1;
            }
        }
        let mut depth = vec![1u32; n];
        let mut stack: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut best = 1;
        while let Some(v) = stack.pop() {
            for &(c, _) in &consumers[v] {
                let cand = depth[v] + 1;
                if cand > depth[c.index()] {
                    depth[c.index()] = cand;
                }
                indeg[c.index()] -= 1;
                if indeg[c.index()] == 0 {
                    stack.push(c.index());
                    best = best.max(depth[c.index()]);
                }
            }
            best = best.max(depth[v]);
        }
        best
    }

    /// Checks DFG invariants (port limits, fanout limits, edge sanity,
    /// acyclicity via [`Dfg::critical_path_len`]'s topological sweep).
    ///
    /// # Panics
    /// Panics on violation; these are compiler bugs, not user errors.
    pub fn assert_valid(&self) {
        let consumers = self.consumers();
        for (i, node) in self.nodes.iter().enumerate() {
            assert!(
                node.token_ports() <= MAX_PORTS,
                "node {i} ({:?}) uses {} token ports (max {MAX_PORTS})",
                node.op,
                node.token_ports()
            );
            assert!(
                node.inputs.len() <= MAX_PORTS,
                "node {i} has {} semantic inputs",
                node.inputs.len()
            );
            let needs_firing = !matches!(node.op, DfgOp::Init);
            if needs_firing {
                assert!(
                    node.dynamic_ports() > 0,
                    "node {i} ({:?}) would never fire (no dynamic inputs)",
                    node.op
                );
            }
            for src in &node.inputs {
                if let ValSrc::Node(p) = src {
                    assert!(p.index() < self.nodes.len(), "node {i} reads invalid node");
                }
            }
        }
        for (i, cons) in consumers.iter().enumerate() {
            assert!(
                cons.len() <= MAX_FANOUT,
                "node {i} has fanout {} (max {MAX_FANOUT})",
                cons.len()
            );
        }
        // Acyclicity: the topological sweep must reach every node.
        let mut indeg = vec![0u32; self.nodes.len()];
        for cons in &consumers {
            for &(c, _) in cons {
                indeg[c.index()] += 1;
            }
        }
        let mut stack: Vec<usize> = (0..self.nodes.len()).filter(|&i| indeg[i] == 0).collect();
        let mut seen = 0;
        while let Some(v) = stack.pop() {
            seen += 1;
            for &(c, _) in &consumers[v] {
                indeg[c.index()] -= 1;
                if indeg[c.index()] == 0 {
                    stack.push(c.index());
                }
            }
        }
        assert_eq!(seen, self.nodes.len(), "dataflow graph has a cycle");
    }
}

/// Incremental DFG builder shared by the per-block lowering here and the
/// SGMF if-converter.
pub(crate) struct DfgBuilder {
    pub nodes: Vec<DfgNode>,
    pub init: NodeId,
}

impl DfgBuilder {
    pub fn new() -> DfgBuilder {
        let init = DfgNode {
            op: DfgOp::Init,
            inputs: Vec::new(),
            trigger: None,
            offsets: Vec::new(),
        };
        DfgBuilder {
            nodes: vec![init],
            init: NodeId(0),
        }
    }

    pub fn push(&mut self, op: DfgOp, inputs: Vec<ValSrc>, trigger: Option<NodeId>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(DfgNode {
            op,
            inputs,
            trigger,
            offsets: Vec::new(),
        });
        id
    }

    /// Ensures the node will fire once per thread: if it has no dynamic
    /// ports, gives it an initiator trigger. If all three semantic ports
    /// are static (so there is no room for a trigger), reroutes the first
    /// port through a `Mov` node.
    pub fn ensure_fires(&mut self, id: NodeId) {
        if self.nodes[id.index()].dynamic_ports() > 0 {
            return;
        }
        if self.nodes[id.index()].inputs.len() >= MAX_PORTS {
            let first = self.nodes[id.index()].inputs[0];
            let mov = self.push(DfgOp::Unary(UnaryOp::Mov), vec![first], Some(self.init));
            self.nodes[id.index()].inputs[0] = ValSrc::Node(mov);
        } else {
            let init = self.init;
            self.nodes[id.index()].trigger = Some(init);
        }
    }

    /// Builds a join tree over `preds` (emitting the constant 1), returning
    /// the root join node, for store-ordering gates.
    pub fn join_of(&mut self, mut preds: Vec<NodeId>) -> NodeId {
        assert!(!preds.is_empty(), "join of nothing");
        loop {
            if preds.len() == 1 && matches!(self.nodes[preds[0].index()].op, DfgOp::Join) {
                return preds[0];
            }
            if preds.len() <= MAX_PORTS {
                let inputs = preds.iter().map(|&p| ValSrc::Node(p)).collect();
                return self.push(DfgOp::Join, inputs, None);
            }
            let mut next = Vec::new();
            for chunk in preds.chunks(MAX_PORTS) {
                if chunk.len() == 1 {
                    next.push(chunk[0]);
                } else {
                    let inputs = chunk.iter().map(|&p| ValSrc::Node(p)).collect();
                    next.push(self.push(DfgOp::Join, inputs, None));
                }
            }
            preds = next;
        }
    }

    /// Inserts split nodes so no producer exceeds [`MAX_FANOUT`] consumers.
    pub fn limit_fanout(&mut self) {
        loop {
            // Recompute consumers; find the first offender.
            let mut cons: Vec<Vec<(NodeId, u8)>> = vec![Vec::new(); self.nodes.len()];
            for (i, node) in self.nodes.iter().enumerate() {
                for (port, src) in node.inputs.iter().enumerate() {
                    if let ValSrc::Node(p) = src {
                        cons[p.index()].push((NodeId(i as u32), port as u8));
                    }
                }
                if let Some(t) = node.trigger {
                    let port = node.trigger_port();
                    cons[t.index()].push((NodeId(i as u32), port));
                }
            }
            let offender = (0..self.nodes.len()).find(|&i| cons[i].len() > MAX_FANOUT);
            let Some(off) = offender else { return };
            // Keep the first MAX_FANOUT - 1 consumers direct; everything
            // else goes through a new split node (which may itself be split
            // on the next iteration).
            let producer = NodeId(off as u32);
            let split = self.push(DfgOp::Split, vec![ValSrc::Node(producer)], None);
            let moved: Vec<(NodeId, u8)> = cons[off]
                .iter()
                .copied()
                .filter(|&(c, _)| c != split)
                .skip(MAX_FANOUT - 1)
                .collect();
            for (consumer, port) in moved {
                let node = &mut self.nodes[consumer.index()];
                if (port as usize) < node.inputs.len() {
                    debug_assert_eq!(node.inputs[port as usize], ValSrc::Node(producer));
                    node.inputs[port as usize] = ValSrc::Node(split);
                } else {
                    debug_assert_eq!(node.trigger, Some(producer));
                    node.trigger = Some(split);
                }
            }
        }
    }

    pub fn finish(mut self, block: Option<BlockId>, term: NodeId) -> Dfg {
        // Folding exposes dead adds, and removing them exposes further
        // folds (chained base+offset addresses), so iterate to fixpoint.
        let mut term = term;
        for _ in 0..4 {
            let folded = self.fold_addresses();
            let (t, removed) = self.eliminate_dead(term);
            term = t;
            if !folded && !removed {
                break;
            }
        }
        self.limit_fanout();
        let dfg = Dfg {
            block,
            nodes: self.nodes,
            init: self.init,
            term,
        };
        dfg.assert_valid();
        dfg
    }

    fn consumers_of(&self) -> Vec<Vec<(NodeId, u8)>> {
        let mut cons: Vec<Vec<(NodeId, u8)>> = vec![Vec::new(); self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            for (port, src) in node.inputs.iter().enumerate() {
                if let ValSrc::Node(p) = src {
                    cons[p.index()].push((NodeId(i as u32), port as u8));
                }
            }
            if let Some(t) = node.trigger {
                let port = node.trigger_port();
                cons[t.index()].push((NodeId(i as u32), port));
            }
        }
        cons
    }

    /// Folds `Add(static, x)` feeding a memory node's address port into
    /// the node's configuration (base+offset addressing), iterating
    /// through add chains (up to two static addends).
    fn fold_addresses(&mut self) -> bool {
        let mut any = false;
        loop {
            let cons = self.consumers_of();
            let mut changed = false;
            for i in 0..self.nodes.len() {
                if !matches!(self.nodes[i].op, DfgOp::Load | DfgOp::Store) {
                    continue;
                }
                if self.nodes[i].offsets.len() >= 2 {
                    continue;
                }
                let ValSrc::Node(p) = self.nodes[i].inputs[0] else {
                    continue;
                };
                let producer = &self.nodes[p.index()];
                if !matches!(producer.op, DfgOp::Binary(BinaryOp::Add)) {
                    continue;
                }
                // Only fold adds whose sole consumer is this address port.
                if cons[p.index()].len() != 1 {
                    continue;
                }
                let (a, b2) = (producer.inputs[0], producer.inputs[1]);
                let (stat, dynv) = match (a.is_dynamic(), b2.is_dynamic()) {
                    (false, true) => (a, b2),
                    (true, false) => (b2, a),
                    (false, false) => (a, b2), // fully static address
                    (true, true) => continue,
                };
                self.nodes[i].inputs[0] = dynv;
                self.nodes[i].offsets.push(stat);
                // If the address became fully static the node may have
                // lost its only dynamic port; re-arm its firing trigger.
                if self.nodes[i].dynamic_ports() == 0 {
                    let init = self.init;
                    self.nodes[i].trigger = Some(init);
                }
                changed = true;
                any = true;
            }
            if !changed {
                return any;
            }
        }
    }

    /// Removes nodes whose output is never consumed (dead address adds and
    /// other dead code), remapping node IDs. Returns the remapped `term`
    /// and whether anything was removed.
    fn eliminate_dead(&mut self, term: NodeId) -> (NodeId, bool) {
        let mut removed_any = false;
        loop {
            let cons = self.consumers_of();
            let dead: Vec<usize> = (0..self.nodes.len())
                .filter(|&i| {
                    cons[i].is_empty()
                        && !self.nodes[i].op.is_sink()
                        && !matches!(self.nodes[i].op, DfgOp::Init)
                })
                .collect();
            if dead.is_empty() {
                break;
            }
            removed_any = true;
            let mut remap: Vec<Option<u32>> = vec![None; self.nodes.len()];
            let mut kept = Vec::with_capacity(self.nodes.len() - dead.len());
            for (i, node) in self.nodes.drain(..).enumerate() {
                if dead.binary_search(&i).is_err() {
                    remap[i] = Some(kept.len() as u32);
                    kept.push(node);
                }
            }
            for node in &mut kept {
                for src in &mut node.inputs {
                    if let ValSrc::Node(n) = src {
                        *src = ValSrc::Node(NodeId(remap[n.index()].expect("live input")));
                    }
                }
                if let Some(t) = node.trigger {
                    node.trigger = Some(NodeId(remap[t.index()].expect("live trigger")));
                }
            }
            self.nodes = kept;
            self.init = NodeId(remap[self.init.index()].expect("init is never dead"));
        }
        // term is a sink and thus never removed, but its index may shift;
        // recompute by scanning (exactly one Term node exists per graph in
        // block DFGs; for safety find the node equal to the remembered id
        // via the remap chain — simplest is to locate the LAST Term node).
        let term_idx = self
            .nodes
            .iter()
            .rposition(|n| matches!(n.op, DfgOp::Term(_)))
            .expect("terminator survives dead-code elimination");
        let _ = term;
        (NodeId(term_idx as u32), removed_any)
    }
}

/// Lowers one basic block into its dataflow graph.
///
/// `liveness` determines which registers are loaded from / stored to the
/// LVC at block boundaries.
pub fn build_block_dfg(kernel: &Kernel, block: BlockId, liveness: &Liveness) -> Dfg {
    let mut b = DfgBuilder::new();
    let bb = kernel.block(block);

    // Live-in registers that are read before written: LVC loads, fired per
    // thread by the initiator. Registers that always hold the thread index
    // are rebroadcast by the initiator itself (§3.5) instead of using the
    // LVC.
    let mut reg_val: HashMap<Reg, ValSrc> = HashMap::new();
    let mut lv_load_node: HashMap<LiveValueId, NodeId> = HashMap::new();
    for r in 0..kernel.num_regs {
        let reg = Reg(r);
        if liveness.is_tid(reg) {
            let init = b.init;
            reg_val.insert(reg, ValSrc::Node(init));
        }
    }
    for reg in liveness.lvc_loads(block) {
        let slot = liveness
            .slot(reg)
            .expect("lvc load of unallocated register");
        let init = b.init;
        let node = b.push(DfgOp::LvLoad(slot), Vec::new(), Some(init));
        reg_val.insert(reg, ValSrc::Node(node));
        lv_load_node.insert(slot, node);
    }

    let resolve = |reg_val: &HashMap<Reg, ValSrc>, op: Operand| -> ValSrc {
        match op {
            Operand::Imm(w) => ValSrc::Imm(w),
            Operand::Reg(r) => reg_val.get(&r).copied().unwrap_or(ValSrc::Imm(Word::ZERO)),
        }
    };

    // Per-thread memory ordering state.
    let mut last_store: Option<NodeId> = None;
    let mut loads_since_store: Vec<NodeId> = Vec::new();

    for inst in &bb.insts {
        match *inst {
            Inst::Const { dst, value } => {
                reg_val.insert(dst, ValSrc::Imm(value));
            }
            Inst::Param { dst, index } => {
                reg_val.insert(dst, ValSrc::Param(index));
            }
            Inst::ThreadId { dst } => {
                let init = b.init;
                reg_val.insert(dst, ValSrc::Node(init));
            }
            Inst::Unary {
                dst,
                op: UnaryOp::Mov,
                src,
            } => {
                // Copy propagation: a Mov is just an alias.
                let v = resolve(&reg_val, src);
                reg_val.insert(dst, v);
            }
            Inst::Unary { dst, op, src } => {
                let v = resolve(&reg_val, src);
                let n = b.push(DfgOp::Unary(op), vec![v], None);
                b.ensure_fires(n);
                reg_val.insert(dst, ValSrc::Node(n));
            }
            Inst::Binary { dst, op, lhs, rhs } => {
                let l = resolve(&reg_val, lhs);
                let r = resolve(&reg_val, rhs);
                let n = b.push(DfgOp::Binary(op), vec![l, r], None);
                b.ensure_fires(n);
                reg_val.insert(dst, ValSrc::Node(n));
            }
            Inst::Select {
                dst,
                cond,
                on_true,
                on_false,
            } => {
                let c = resolve(&reg_val, cond);
                let t = resolve(&reg_val, on_true);
                let f = resolve(&reg_val, on_false);
                let n = b.push(DfgOp::Select, vec![c, t, f], None);
                b.ensure_fires(n);
                reg_val.insert(dst, ValSrc::Node(n));
            }
            Inst::Fma { dst, a, b: bb2, c } => {
                let x = resolve(&reg_val, a);
                let y = resolve(&reg_val, bb2);
                let z = resolve(&reg_val, c);
                let n = b.push(DfgOp::Fma, vec![x, y, z], None);
                b.ensure_fires(n);
                reg_val.insert(dst, ValSrc::Node(n));
            }
            Inst::Load { dst, addr } => {
                let a = resolve(&reg_val, addr);
                let n = b.push(DfgOp::Load, vec![a], last_store);
                b.ensure_fires(n);
                reg_val.insert(dst, ValSrc::Node(n));
                loads_since_store.push(n);
            }
            Inst::Store { addr, value } => {
                let a = resolve(&reg_val, addr);
                let v = resolve(&reg_val, value);
                let mut preds = loads_since_store.clone();
                if let Some(s) = last_store {
                    preds.push(s);
                }
                let gate = if preds.is_empty() {
                    None
                } else {
                    Some(b.join_of(preds))
                };
                let mut inputs = vec![a, v];
                if let Some(g) = gate {
                    inputs.push(ValSrc::Node(g));
                }
                let n = b.push(DfgOp::Store, inputs, None);
                b.ensure_fires(n);
                last_store = Some(n);
                loads_since_store.clear();
            }
        }
    }

    // LVC stores for registers defined here and live out.
    for reg in liveness.lvc_stores(block) {
        let slot = liveness
            .slot(reg)
            .expect("lvc store of unallocated register");
        let value = reg_val
            .get(&reg)
            .copied()
            .unwrap_or(ValSrc::Imm(Word::ZERO));
        // Order after this block's LvLoad of the same slot, if any (the
        // store must not overtake the load for the same thread).
        let trigger = match value {
            ValSrc::Node(_) => {
                // If the value transitively depends on the load this is
                // redundant but harmless; detecting dependence would cost
                // more than the token. Only add when a load exists and the
                // value is not the load itself.
                match lv_load_node.get(&slot) {
                    Some(&ld) if value != ValSrc::Node(ld) => Some(ld),
                    _ => None,
                }
            }
            _ => lv_load_node.get(&slot).copied(),
        };
        let n = b.push(DfgOp::LvStore(slot), vec![value], trigger);
        b.ensure_fires(n);
    }

    // Terminator.
    let targets = match bb.term {
        Terminator::Jump(t) => TermTargets::jump(t),
        Terminator::Branch {
            taken, not_taken, ..
        } => TermTargets::branch(taken, not_taken),
        Terminator::Exit => TermTargets::EXIT,
    };
    let term = match bb.term {
        Terminator::Branch { cond, .. } => {
            let c = resolve(&reg_val, cond);
            let n = b.push(DfgOp::Term(targets), vec![c], None);
            b.ensure_fires(n);
            n
        }
        _ => {
            let init = b.init;
            b.push(DfgOp::Term(targets), Vec::new(), Some(init))
        }
    };

    b.finish(Some(block), term)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::liveness;
    use vgiw_ir::KernelBuilder;

    fn lower_all(k: &Kernel) -> Vec<Dfg> {
        let lv = liveness::analyze(k);
        (0..k.num_blocks())
            .map(|i| build_block_dfg(k, BlockId(i as u32), &lv))
            .collect()
    }

    #[test]
    fn straight_line_lowering_shapes() {
        let mut b = KernelBuilder::new("k", 1);
        let tid = b.thread_id();
        let base = b.param(0);
        let addr = b.add(base, tid);
        let v = b.mul(tid, tid);
        b.store(addr, v);
        let k = b.finish();
        let dfgs = lower_all(&k);
        assert_eq!(dfgs.len(), 1);
        let d = &dfgs[0];
        // init, mul, store, term = 4 nodes; the address add folds into the
        // store's base+offset configuration (its base is the static param,
        // its dynamic input the thread ID); no LVU, no joins.
        assert_eq!(d.nodes.len(), 4);
        let counts = d.kind_counts();
        assert_eq!(counts.get(UnitKind::Lvu), 0);
        assert_eq!(counts.get(UnitKind::Alu), 1);
        assert_eq!(counts.get(UnitKind::LdSt), 1);
        assert_eq!(counts.get(UnitKind::Cvu), 2);
        assert_eq!(d.num_sinks(), 2); // store + term
        let store = d
            .nodes
            .iter()
            .find(|n| matches!(n.op, DfgOp::Store))
            .expect("store");
        assert_eq!(store.offsets.len(), 1, "base folds into the unit config");
    }

    #[test]
    fn params_and_consts_fold_into_configuration() {
        let mut b = KernelBuilder::new("k", 1);
        let base = b.param(0);
        let five = b.const_u32(5);
        let addr = b.add(base, five); // both inputs static!
        let tid = b.thread_id();
        b.store(addr, tid);
        let k = b.finish();
        let d = &lower_all(&k)[0];
        // The fully-static address folds into the store's configuration:
        // no add node survives, and the store keeps an initiator-triggered
        // or tid-fed firing path.
        assert!(
            !d.nodes
                .iter()
                .any(|n| matches!(n.op, DfgOp::Binary(BinaryOp::Add))),
            "static address add must fold away"
        );
        let store = d
            .nodes
            .iter()
            .find(|n| matches!(n.op, DfgOp::Store))
            .expect("store");
        assert_eq!(store.offsets.len(), 1);
        assert!(
            store.dynamic_ports() > 0,
            "the store must still fire per thread"
        );
    }

    #[test]
    fn store_load_ordering_uses_joins() {
        // load a; load b; store c; load d; store e
        let mut b = KernelBuilder::new("k", 0);
        let a0 = b.const_u32(0);
        let a1 = b.const_u32(1);
        let a2 = b.const_u32(2);
        let a3 = b.const_u32(3);
        let a4 = b.const_u32(4);
        let x = b.load(a0);
        let y = b.load(a1);
        let s = b.add(x, y);
        b.store(a2, s);
        let z = b.load(a3);
        b.store(a4, z);
        let k = b.finish();
        let d = &lower_all(&k)[0];
        // First store: joins the two loads. Second store: gate is the
        // single load after the first store + the first store -> join of 2.
        let joins = d
            .nodes
            .iter()
            .filter(|n| matches!(n.op, DfgOp::Join))
            .count();
        assert_eq!(joins, 2, "expected 2 join nodes, graph: {:?}", d.nodes);
        // The load after the store must carry the store as its trigger.
        let stores: Vec<usize> = d
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n.op, DfgOp::Store))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(stores.len(), 2);
        let first_store = NodeId(stores[0] as u32);
        assert!(
            d.nodes
                .iter()
                .any(|n| matches!(n.op, DfgOp::Load) && n.trigger == Some(first_store)),
            "the post-store load must be order-triggered by the first store"
        );
    }

    #[test]
    fn cross_block_values_become_lv_nodes() {
        let mut b = KernelBuilder::new("k", 1);
        let tid = b.thread_id();
        let base = b.param(0);
        let addr = b.add(base, tid);
        let two = b.const_u32(2);
        let c = b.lt_u(tid, two);
        b.if_(c, |b| {
            let one = b.const_u32(1);
            b.store(addr, one);
        });
        let k = b.finish();
        let dfgs = lower_all(&k);
        // Entry block stores `addr` (and tid if live); then-block loads it.
        let entry = &dfgs[0];
        let then = &dfgs[1];
        assert!(
            entry
                .nodes
                .iter()
                .any(|n| matches!(n.op, DfgOp::LvStore(_))),
            "entry must store live values"
        );
        assert!(
            then.nodes.iter().any(|n| matches!(n.op, DfgOp::LvLoad(_))),
            "then-block must load live values"
        );
        // The branch terminator consumes the condition.
        let term = &entry.nodes[entry.term.index()];
        assert_eq!(term.inputs.len(), 1);
        match term.op {
            DfgOp::Term(t) => {
                assert!(t.taken.is_some() && t.not_taken.is_some());
            }
            _ => panic!("terminator node has wrong op"),
        }
    }

    #[test]
    fn fanout_is_limited_by_splits() {
        // One value consumed by many stores -> split tree.
        let mut b = KernelBuilder::new("k", 0);
        let tid = b.thread_id();
        for i in 0..12u32 {
            let a = b.const_u32(i);
            b.store(a, tid);
        }
        let k = b.finish();
        let d = &lower_all(&k)[0];
        let consumers = d.consumers();
        for (i, cons) in consumers.iter().enumerate() {
            assert!(
                cons.len() <= MAX_FANOUT,
                "node {i} has fanout {}",
                cons.len()
            );
        }
        assert!(
            d.nodes.iter().any(|n| matches!(n.op, DfgOp::Split)),
            "wide fanout must introduce split nodes"
        );
    }

    #[test]
    fn critical_path_is_positive_and_bounded() {
        let mut b = KernelBuilder::new("k", 0);
        let tid = b.thread_id();
        let mut v = tid;
        for _ in 0..6 {
            v = b.add(v, tid);
        }
        let a0 = b.const_u32(0);
        b.store(a0, v);
        let k = b.finish();
        let d = &lower_all(&k)[0];
        let cp = d.critical_path_len();
        // init -> 6 adds -> store = at least 8 nodes on the path.
        assert!(cp >= 8, "critical path {cp}");
        assert!(cp as usize <= d.nodes.len());
    }

    #[test]
    fn empty_block_is_init_plus_term() {
        let mut b = KernelBuilder::new("k", 0);
        let t = b.thread_id();
        let one = b.const_u32(1);
        let c = b.lt_u(t, one);
        b.if_else(c, |_| {}, |_| {});
        let k = b.finish();
        let dfgs = lower_all(&k);
        // Then/else blocks are empty: init + term only.
        for d in &dfgs[1..3] {
            assert_eq!(d.nodes.len(), 2, "empty block should be init+term");
            assert_eq!(d.nodes[d.term.index()].trigger, Some(d.init));
        }
    }
}
