//! The MT-CGRF grid floorplan and interconnect distance model.
//!
//! The paper's VGIW core (Table 1) has 108 interconnected units: 32 combined
//! FPU-ALU compute units, 12 special compute units (SCU), 16 load/store
//! units, 16 live value units, 16 split/join units and 16 control vector
//! units. Memory-facing units (LDST, LVU) sit on the grid perimeter next to
//! the L1/LVC crossbars (§3.5).
//!
//! The interconnect is a folded hypercube (§3.5): each unit reaches its four
//! nearest units and four nearest switches, and switches additionally reach
//! the switches at Manhattan distance two — giving one-cycle hops, low
//! diameter and perimeter/interior connectivity equalization. We model it
//! as an explicit graph over units and switches and precompute all-pairs
//! unit-to-unit hop distances with BFS.

use std::collections::VecDeque;
use std::fmt;

/// The kind of functional unit at a grid position.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum UnitKind {
    /// Combined FPU-ALU compute unit (pipelined ops).
    Alu,
    /// Special compute unit (non-pipelined div/sqrt/transcendental).
    Scu,
    /// Load/store unit (L1-facing, perimeter).
    LdSt,
    /// Live value unit (LVC-facing, perimeter).
    Lvu,
    /// Split/join unit.
    SplitJoin,
    /// Control vector unit (thread initiator/terminator).
    Cvu,
}

/// All unit kinds, for iteration.
pub const UNIT_KINDS: [UnitKind; 6] = [
    UnitKind::Alu,
    UnitKind::Scu,
    UnitKind::LdSt,
    UnitKind::Lvu,
    UnitKind::SplitJoin,
    UnitKind::Cvu,
];

/// Index of a physical unit in the grid.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct UnitId(pub u32);

impl UnitId {
    /// The unit index as a usize.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Per-kind unit counts.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct KindCounts {
    counts: [u32; 6],
}

impl KindCounts {
    fn kind_index(kind: UnitKind) -> usize {
        match kind {
            UnitKind::Alu => 0,
            UnitKind::Scu => 1,
            UnitKind::LdSt => 2,
            UnitKind::Lvu => 3,
            UnitKind::SplitJoin => 4,
            UnitKind::Cvu => 5,
        }
    }

    /// The count for `kind`.
    pub fn get(&self, kind: UnitKind) -> u32 {
        self.counts[Self::kind_index(kind)]
    }

    /// Mutable count for `kind`.
    pub fn get_mut(&mut self, kind: UnitKind) -> &mut u32 {
        &mut self.counts[Self::kind_index(kind)]
    }

    /// Increments the count for `kind`.
    pub fn add(&mut self, kind: UnitKind, n: u32) {
        *self.get_mut(kind) += n;
    }

    /// Total across all kinds.
    pub fn total(&self) -> u32 {
        self.counts.iter().sum()
    }

    /// Whether every per-kind count in `self` is ≤ the one in `capacity`.
    pub fn fits_in(&self, capacity: &KindCounts) -> bool {
        UNIT_KINDS.iter().all(|&k| self.get(k) <= capacity.get(k))
    }
}

impl fmt::Display for KindCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "alu={} scu={} ldst={} lvu={} sj={} cvu={}",
            self.get(UnitKind::Alu),
            self.get(UnitKind::Scu),
            self.get(UnitKind::LdSt),
            self.get(UnitKind::Lvu),
            self.get(UnitKind::SplitJoin),
            self.get(UnitKind::Cvu),
        )
    }
}

/// A physical grid of functional units plus its interconnect distances.
#[derive(Clone)]
pub struct GridSpec {
    width: u32,
    height: u32,
    kinds: Vec<UnitKind>,
    /// All-pairs hop distance between units (row-major `u * n + v`).
    hops: Vec<u8>,
}

impl GridSpec {
    /// The paper's Table-1 grid: 12×9 = 108 units with memory-facing units
    /// on the perimeter.
    pub fn paper() -> GridSpec {
        GridSpec::with_floorplan(12, 9, &default_floorplan(12, 9))
    }

    /// Builds a grid from an explicit floorplan (`kinds[y * width + x]`).
    ///
    /// # Panics
    /// Panics if `kinds.len() != width * height`.
    pub fn with_floorplan(width: u32, height: u32, kinds: &[UnitKind]) -> GridSpec {
        assert_eq!(
            kinds.len() as u32,
            width * height,
            "floorplan size mismatch"
        );
        let hops = compute_hops(width, height);
        GridSpec {
            width,
            height,
            kinds: kinds.to_vec(),
            hops,
        }
    }

    /// Grid width in units.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Grid height in units.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Total number of units.
    pub fn num_units(&self) -> usize {
        self.kinds.len()
    }

    /// The kind of unit `u`.
    pub fn kind(&self, u: UnitId) -> UnitKind {
        self.kinds[u.index()]
    }

    /// The `(x, y)` position of unit `u`.
    pub fn position(&self, u: UnitId) -> (u32, u32) {
        (u.0 % self.width, u.0 / self.width)
    }

    /// All units of the given kind.
    pub fn units_of_kind(&self, kind: UnitKind) -> Vec<UnitId> {
        self.kinds
            .iter()
            .enumerate()
            .filter(|&(_, &k)| k == kind)
            .map(|(i, _)| UnitId(i as u32))
            .collect()
    }

    /// Per-kind capacity of the grid.
    pub fn capacity(&self) -> KindCounts {
        let mut c = KindCounts::default();
        for &k in &self.kinds {
            c.add(k, 1);
        }
        c
    }

    /// Interconnect hop count between two units (each hop is one cycle).
    pub fn hop_distance(&self, a: UnitId, b: UnitId) -> u32 {
        self.hops[a.index() * self.num_units() + b.index()] as u32
    }

    /// The number of cycles one configuration wave takes to cross the grid:
    /// `ceil(sqrt(#units))`, per §3.2 (the paper's 108-unit prototype
    /// reports 11 cycles per wave, two waves per reconfiguration).
    pub fn config_wave_cycles(&self) -> u64 {
        (self.num_units() as f64).sqrt().ceil() as u64
    }
}

impl fmt::Debug for GridSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "GridSpec {{ {}x{}, {} }}",
            self.width,
            self.height,
            self.capacity()
        )
    }
}

/// The default 108-unit floorplan: LDST and LVU alternating on the
/// perimeter (next to the banked L1 / LVC crossbars), CVUs split between
/// the remaining perimeter cells and the interior edge, ALU/SCU/SJU inside.
fn default_floorplan(width: u32, height: u32) -> Vec<UnitKind> {
    let n = (width * height) as usize;
    let mut kinds = vec![None; n];
    let is_perimeter = |x: u32, y: u32| x == 0 || y == 0 || x == width - 1 || y == height - 1;

    // Perimeter positions in clockwise order starting at (0,0).
    let mut perimeter = Vec::new();
    for x in 0..width {
        perimeter.push((x, 0));
    }
    for y in 1..height {
        perimeter.push((width - 1, y));
    }
    for x in (0..width - 1).rev() {
        perimeter.push((x, height - 1));
    }
    for y in (1..height - 1).rev() {
        perimeter.push((0, y));
    }
    debug_assert_eq!(perimeter.len() as u32, 2 * (width + height) - 4);

    // Interleave LDST and LVU around the perimeter so both cache crossbars
    // see spatially spread clients; CVUs take the leftover perimeter cells.
    let mut ldst = 16;
    let mut lvu = 16;
    let mut cvu = 16;
    for (i, &(x, y)) in perimeter.iter().enumerate() {
        let idx = (y * width + x) as usize;
        let kind = if ldst > 0 && i % 2 == 0 {
            ldst -= 1;
            UnitKind::LdSt
        } else if lvu > 0 && i % 2 == 1 {
            lvu -= 1;
            UnitKind::Lvu
        } else if ldst > 0 {
            ldst -= 1;
            UnitKind::LdSt
        } else if lvu > 0 {
            lvu -= 1;
            UnitKind::Lvu
        } else {
            cvu -= 1;
            UnitKind::Cvu
        };
        kinds[idx] = Some(kind);
    }

    // Interior: remaining CVUs first (nearest the perimeter ring), then SJU,
    // SCU and ALU filling inward.
    let mut remaining: Vec<(u32, u32)> = (0..height)
        .flat_map(|y| (0..width).map(move |x| (x, y)))
        .filter(|&(x, y)| !is_perimeter(x, y))
        .collect();
    // Order interior cells by distance from center so ALUs cluster centrally
    // and helper units sit near the ring.
    let cx = (width - 1) as f64 / 2.0;
    let cy = (height - 1) as f64 / 2.0;
    remaining.sort_by(|a, b| {
        let da = (a.0 as f64 - cx).abs() + (a.1 as f64 - cy).abs();
        let db = (b.0 as f64 - cx).abs() + (b.1 as f64 - cy).abs();
        db.partial_cmp(&da).unwrap()
    });

    let mut sju = 16;
    let mut scu = 12;
    let mut alu = 32;
    for (x, y) in remaining {
        let idx = (y * width + x) as usize;
        let kind = if cvu > 0 {
            cvu -= 1;
            UnitKind::Cvu
        } else if sju > 0 {
            sju -= 1;
            UnitKind::SplitJoin
        } else if scu > 0 {
            scu -= 1;
            UnitKind::Scu
        } else {
            debug_assert!(alu > 0, "floorplan unit budget exhausted");
            alu -= 1;
            UnitKind::Alu
        };
        kinds[idx] = Some(kind);
    }
    debug_assert_eq!(alu, 0, "floorplan must consume exactly 32 ALUs");
    kinds
        .into_iter()
        .map(|k| k.expect("every cell assigned"))
        .collect()
}

/// Builds the folded-hypercube-style interconnect graph and returns the
/// all-pairs unit-to-unit BFS hop distances.
///
/// Graph construction: units at integer positions; one switch per unit
/// co-located with it. Unit→unit links to the 4 nearest neighbours;
/// unit→switch links to its own switch and the 4 diagonal switches;
/// switch→switch links to the 4 switches at Manhattan distance 2 (the
/// folded "express" links). Every link is one cycle.
fn compute_hops(width: u32, height: u32) -> Vec<u8> {
    let n = (width * height) as usize;
    // Node numbering: 0..n units, n..2n switches.
    let total = 2 * n;
    let idx = |x: u32, y: u32| (y * width + x) as usize;
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); total];
    let mut connect = |a: usize, b: usize| {
        adj[a].push(b);
        adj[b].push(a);
    };
    for y in 0..height {
        for x in 0..width {
            let u = idx(x, y);
            let s = n + u;
            // Unit to its co-located switch.
            connect(u, s);
            // Unit to 4 nearest units.
            if x + 1 < width {
                connect(u, idx(x + 1, y));
            }
            if y + 1 < height {
                connect(u, idx(x, y + 1));
            }
            // Unit to the 4 nearest (diagonal) switches.
            for (dx, dy) in [(1i64, 1i64), (1, -1), (-1, 1), (-1, -1)] {
                let nx = x as i64 + dx;
                let ny = y as i64 + dy;
                if nx >= 0 && ny >= 0 && (nx as u32) < width && (ny as u32) < height {
                    let sw = n + idx(nx as u32, ny as u32);
                    if u < sw {
                        connect(u, sw);
                    }
                }
            }
            // Switch express links: Manhattan distance 2.
            for (dx, dy) in [(2i64, 0i64), (0, 2), (1, 1), (1, -1)] {
                let nx = x as i64 + dx;
                let ny = y as i64 + dy;
                if nx >= 0 && ny >= 0 && (nx as u32) < width && (ny as u32) < height {
                    connect(s, n + idx(nx as u32, ny as u32));
                }
            }
        }
    }

    let mut hops = vec![0u8; n * n];
    let mut dist = vec![u32::MAX; total];
    let mut queue = VecDeque::new();
    for src in 0..n {
        dist.fill(u32::MAX);
        dist[src] = 0;
        queue.clear();
        queue.push_back(src);
        while let Some(v) = queue.pop_front() {
            for &w in &adj[v] {
                if dist[w] == u32::MAX {
                    dist[w] = dist[v] + 1;
                    queue.push_back(w);
                }
            }
        }
        for dst in 0..n {
            hops[src * n + dst] = dist[dst].min(u8::MAX as u32) as u8;
        }
    }
    hops
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_grid_has_table1_counts() {
        let g = GridSpec::paper();
        assert_eq!(g.num_units(), 108);
        let cap = g.capacity();
        assert_eq!(cap.get(UnitKind::Alu), 32);
        assert_eq!(cap.get(UnitKind::Scu), 12);
        assert_eq!(cap.get(UnitKind::LdSt), 16);
        assert_eq!(cap.get(UnitKind::Lvu), 16);
        assert_eq!(cap.get(UnitKind::SplitJoin), 16);
        assert_eq!(cap.get(UnitKind::Cvu), 16);
        assert_eq!(cap.total(), 108);
    }

    #[test]
    fn memory_units_live_on_the_perimeter() {
        let g = GridSpec::paper();
        for kind in [UnitKind::LdSt, UnitKind::Lvu] {
            for u in g.units_of_kind(kind) {
                let (x, y) = g.position(u);
                assert!(
                    x == 0 || y == 0 || x == g.width() - 1 || y == g.height() - 1,
                    "{kind:?} at ({x},{y}) is not on the perimeter"
                );
            }
        }
    }

    #[test]
    fn hop_distances_are_sane() {
        let g = GridSpec::paper();
        let a = UnitId(0);
        assert_eq!(g.hop_distance(a, a), 0);
        // Horizontal neighbour: one hop.
        assert_eq!(g.hop_distance(UnitId(0), UnitId(1)), 1);
        // Symmetric.
        let b = UnitId(50);
        assert_eq!(g.hop_distance(a, b), g.hop_distance(b, a));
        // Express links keep the diameter small: corner to corner on a
        // 12x9 grid should be well under the Manhattan distance of 19.
        let corner = UnitId((g.num_units() - 1) as u32);
        let d = g.hop_distance(a, corner);
        assert!(d <= 12, "diameter too large: {d}");
        assert!(d >= 4, "diameter suspiciously small: {d}");
    }

    #[test]
    fn config_wave_cycles_matches_paper() {
        // sqrt(108) = 10.39 -> 11 cycles per wave, as in §3.2.
        assert_eq!(GridSpec::paper().config_wave_cycles(), 11);
    }

    #[test]
    fn kind_counts_fit() {
        let mut a = KindCounts::default();
        a.add(UnitKind::Alu, 30);
        let cap = GridSpec::paper().capacity();
        assert!(a.fits_in(&cap));
        a.add(UnitKind::Alu, 10);
        assert!(!a.fits_in(&cap));
    }

    #[test]
    fn units_of_kind_partition_the_grid() {
        let g = GridSpec::paper();
        let total: usize = UNIT_KINDS.iter().map(|&k| g.units_of_kind(k).len()).sum();
        assert_eq!(total, g.num_units());
    }
}
