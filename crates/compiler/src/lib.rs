//! The VGIW compiler: lowers `vgiw-ir` kernels onto the MT-CGRF grid.
//!
//! Pipeline (paper section 3.1):
//!
//! 1. [`split::split_to_fit`] — capacity-driven basic block splitting, the
//!    mechanism that lets VGIW run kernels of any size;
//! 2. block renumbering in scheduling order (entry = 0, back edges to
//!    smaller IDs) via `vgiw_ir::cfg::renumber_rpo`;
//! 3. [`liveness::analyze`] — live value allocation for the LVC;
//! 4. [`dfg::build_block_dfg`] — per-block dataflow graph lowering with
//!    LVU, split/join and CVU node insertion;
//! 5. replica packing and [`place::place`] — place & route on the folded
//!    hypercube interconnect.
//!
//! [`compile`] drives the whole pipeline. [`ifconvert::if_convert`]
//! additionally lowers whole kernels into single predicated graphs for the
//! SGMF baseline.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dfg;
pub mod grid;
pub mod ifconvert;
pub mod liveness;
pub mod place;
pub mod split;

mod config;

pub use config::{compile, CompileError, CompiledBlock, CompiledKernel, MAX_REPLICAS};
pub use dfg::{Dfg, DfgNode, DfgOp, NodeId, TermTargets, ValSrc, MAX_FANOUT, MAX_PORTS};
pub use grid::{GridSpec, KindCounts, UnitId, UnitKind, UNIT_KINDS};
pub use liveness::{LiveValueId, Liveness};
pub use place::Placement;
