//! If-conversion: lowering a whole kernel into one predicated dataflow
//! graph for the SGMF baseline.
//!
//! SGMF "maps all the paths through a control flow graph onto its MT-CGRF
//! core ... effectively executing all thread control flows in parallel"
//! (§2, Figure 1c). We reproduce that by if-converting the kernel: every
//! block's operations appear in a single DAG, guarded by the block's
//! predicate; values merging at control joins go through select nodes;
//! stores are gated by their block predicate (a predicated-off store still
//! *fires* — occupying its unit — but suppresses the write, which is
//! exactly the resource underutilization the paper attributes to SGMF).
//!
//! Kernels with loops, or whose converted graph exceeds the fabric
//! capacity, are not SGMF-mappable — the paper's evaluation likewise
//! compares "the subset of kernels that can be mapped to the SGMF cores".

use crate::dfg::{Dfg, DfgBuilder, DfgOp, NodeId, TermTargets, ValSrc};
use crate::grid::GridSpec;
use crate::liveness;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use vgiw_ir::{BinaryOp, BlockId, Inst, Kernel, Operand, Reg, Terminator, UnaryOp, Word};

/// Why a kernel cannot run on SGMF.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum IfConvertError {
    /// The control flow graph has a loop (back edge).
    HasLoop,
    /// The predicated whole-kernel graph does not fit the grid.
    TooLarge {
        /// Nodes required, for diagnostics.
        nodes: usize,
    },
}

impl fmt::Display for IfConvertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IfConvertError::HasLoop => write!(f, "kernel has loops; SGMF mapping unsupported"),
            IfConvertError::TooLarge { nodes } => {
                write!(
                    f,
                    "if-converted graph ({nodes} nodes) exceeds fabric capacity"
                )
            }
        }
    }
}

impl Error for IfConvertError {}

/// If-converts `kernel` into a single predicated DFG and checks it fits
/// `grid`.
///
/// # Errors
/// Returns [`IfConvertError`] for loops or capacity overflow.
pub fn if_convert(kernel: &Kernel, grid: &GridSpec) -> Result<Dfg, IfConvertError> {
    if vgiw_ir::cfg::has_loops(kernel) {
        return Err(IfConvertError::HasLoop);
    }
    // Work on the reachable subgraph only: hand-built kernels may carry
    // unreachable blocks, which would otherwise hit the "no predecessors"
    // merge assertion. Renumbering also restores RPO order, which the
    // forward pass below relies on.
    let pruned;
    let kernel = if vgiw_ir::cfg::reverse_post_order(kernel).len() != kernel.num_blocks() {
        let mut k = kernel.clone();
        vgiw_ir::cfg::renumber_rpo(&mut k);
        pruned = k;
        &pruned
    } else {
        kernel
    };

    let mut b = DfgBuilder::new();
    let nb = kernel.num_blocks();
    // Liveness bounds the merge work: only registers live into a join
    // block need select nodes (dead paths' values are simply dropped).
    let live = liveness::analyze(kernel);

    // Block predicates and per-block-exit register maps, filled in RPO
    // (block IDs are already RPO after the builder/renumber pass).
    let mut block_pred: Vec<Option<ValSrc>> = vec![None; nb]; // None until computed
    let mut exit_vals: Vec<Option<HashMap<Reg, ValSrc>>> = vec![None; nb];
    // Branch condition value of each block (for edge predicates).
    let mut branch_cond: Vec<Option<ValSrc>> = vec![None; nb];

    // Global conservative memory ordering across the whole graph.
    let mut last_store: Option<NodeId> = None;
    let mut loads_since_store: Vec<NodeId> = Vec::new();

    let preds_of = vgiw_ir::cfg::predecessors(kernel);

    for i in 0..nb {
        let block = BlockId(i as u32);
        let bb = kernel.block(block);

        // ---- merge predecessor state -----------------------------------
        let (pred, mut reg_val) = if i == 0 {
            (ValSrc::Imm(Word::ONE), HashMap::new())
        } else {
            let mut incoming: Vec<(ValSrc, &HashMap<Reg, ValSrc>)> = Vec::new();
            for &p in &preds_of[i] {
                let p_pred = block_pred[p.index()].expect("RPO processes preds first");
                let p_vals = exit_vals[p.index()].as_ref().expect("preds first");
                let edge_pred = edge_predicate(&mut b, kernel, p, block, p_pred, &branch_cond);
                incoming.push((edge_pred, p_vals));
            }
            merge_incoming(&mut b, incoming, &live.live_in[i])
        };
        block_pred[i] = Some(pred);

        // ---- lower the block body, predicated --------------------------
        let resolve = |reg_val: &HashMap<Reg, ValSrc>, op: Operand| -> ValSrc {
            match op {
                Operand::Imm(w) => ValSrc::Imm(w),
                Operand::Reg(r) => reg_val.get(&r).copied().unwrap_or(ValSrc::Imm(Word::ZERO)),
            }
        };

        for inst in &bb.insts {
            match *inst {
                Inst::Const { dst, value } => {
                    reg_val.insert(dst, ValSrc::Imm(value));
                }
                Inst::Param { dst, index } => {
                    reg_val.insert(dst, ValSrc::Param(index));
                }
                Inst::ThreadId { dst } => {
                    let init = b.init;
                    reg_val.insert(dst, ValSrc::Node(init));
                }
                Inst::Unary {
                    dst,
                    op: UnaryOp::Mov,
                    src,
                } => {
                    let v = resolve(&reg_val, src);
                    reg_val.insert(dst, v);
                }
                Inst::Unary { dst, op, src } => {
                    let v = resolve(&reg_val, src);
                    let n = b.push(DfgOp::Unary(op), vec![v], None);
                    b.ensure_fires(n);
                    reg_val.insert(dst, ValSrc::Node(n));
                }
                Inst::Binary { dst, op, lhs, rhs } => {
                    let l = resolve(&reg_val, lhs);
                    let r = resolve(&reg_val, rhs);
                    let n = b.push(DfgOp::Binary(op), vec![l, r], None);
                    b.ensure_fires(n);
                    reg_val.insert(dst, ValSrc::Node(n));
                }
                Inst::Select {
                    dst,
                    cond,
                    on_true,
                    on_false,
                } => {
                    let c = resolve(&reg_val, cond);
                    let t = resolve(&reg_val, on_true);
                    let f = resolve(&reg_val, on_false);
                    let n = b.push(DfgOp::Select, vec![c, t, f], None);
                    b.ensure_fires(n);
                    reg_val.insert(dst, ValSrc::Node(n));
                }
                Inst::Fma { dst, a, b: bb2, c } => {
                    let x = resolve(&reg_val, a);
                    let y = resolve(&reg_val, bb2);
                    let z = resolve(&reg_val, c);
                    let n = b.push(DfgOp::Fma, vec![x, y, z], None);
                    b.ensure_fires(n);
                    reg_val.insert(dst, ValSrc::Node(n));
                }
                Inst::Load { dst, addr } => {
                    // Loads execute unconditionally (out-of-range addresses
                    // read as zero in this machine, so a predicated-off
                    // load is harmless — its value is masked by selects).
                    let a = resolve(&reg_val, addr);
                    let n = b.push(DfgOp::Load, vec![a], last_store);
                    b.ensure_fires(n);
                    reg_val.insert(dst, ValSrc::Node(n));
                    loads_since_store.push(n);
                }
                Inst::Store { addr, value } => {
                    let a = resolve(&reg_val, addr);
                    let v = resolve(&reg_val, value);
                    let mut order = loads_since_store.clone();
                    if let Some(s) = last_store {
                        order.push(s);
                    }
                    let gate = store_gate(&mut b, pred, order);
                    let mut inputs = vec![a, v];
                    if let Some(g) = gate {
                        inputs.push(g);
                    }
                    let n = b.push(DfgOp::Store, inputs, None);
                    b.ensure_fires(n);
                    last_store = Some(n);
                    loads_since_store.clear();
                }
            }
        }
        branch_cond[i] = match bb.term {
            Terminator::Branch { cond, .. } => Some(resolve(&reg_val, cond)),
            _ => None,
        };
        exit_vals[i] = Some(reg_val);
    }

    // Single exit terminator fired per thread.
    let init = b.init;
    let term = b.push(DfgOp::Term(TermTargets::EXIT), Vec::new(), Some(init));
    let dfg = b.finish(None, term);

    if !dfg.kind_counts().fits_in(&grid.capacity()) {
        return Err(IfConvertError::TooLarge {
            nodes: dfg.nodes.len(),
        });
    }
    Ok(dfg)
}

/// The predicate of edge `from -> to`: `pred(from)` combined with the
/// branch condition when `from` ends in a two-way branch.
fn edge_predicate(
    b: &mut DfgBuilder,
    kernel: &Kernel,
    from: BlockId,
    to: BlockId,
    from_pred: ValSrc,
    branch_cond: &[Option<ValSrc>],
) -> ValSrc {
    match kernel.block(from).term {
        Terminator::Jump(_) => from_pred,
        // A degenerate branch with both sides on the same target is an
        // unconditional edge: the condition must not gate it.
        Terminator::Branch {
            taken, not_taken, ..
        } if taken == not_taken => from_pred,
        Terminator::Branch {
            taken, not_taken, ..
        } => {
            let cond = branch_cond[from.index()].expect("branch cond lowered");
            // Normalize the condition to 0/1 for And-composition: any
            // nonzero word is true, so compare != 0.
            let cond01 = normalize_pred(b, cond);
            let edge_cond = if to == taken {
                cond01
            } else {
                debug_assert_eq!(to, not_taken);
                let n = b.push(
                    DfgOp::Binary(BinaryOp::CmpEq),
                    vec![cond01, ValSrc::Imm(Word::ZERO)],
                    None,
                );
                b.ensure_fires(n);
                ValSrc::Node(n)
            };
            and_preds(b, from_pred, edge_cond)
        }
        Terminator::Exit => from_pred, // unreachable: exits have no successors
    }
}

fn normalize_pred(b: &mut DfgBuilder, v: ValSrc) -> ValSrc {
    match v {
        ValSrc::Imm(w) => ValSrc::Imm(Word::from_bool(w.as_bool())),
        _ => {
            let n = b.push(
                DfgOp::Binary(BinaryOp::CmpNe),
                vec![v, ValSrc::Imm(Word::ZERO)],
                None,
            );
            b.ensure_fires(n);
            ValSrc::Node(n)
        }
    }
}

fn and_preds(b: &mut DfgBuilder, x: ValSrc, y: ValSrc) -> ValSrc {
    match (x, y) {
        (ValSrc::Imm(w), other) if w.as_bool() => other,
        (other, ValSrc::Imm(w)) if w.as_bool() => other,
        (ValSrc::Imm(w), _) | (_, ValSrc::Imm(w)) if !w.as_bool() => ValSrc::Imm(Word::ZERO),
        _ => {
            let n = b.push(DfgOp::Binary(BinaryOp::And), vec![x, y], None);
            b.ensure_fires(n);
            ValSrc::Node(n)
        }
    }
}

fn or_preds(b: &mut DfgBuilder, x: ValSrc, y: ValSrc) -> ValSrc {
    match (x, y) {
        (ValSrc::Imm(w), other) if !w.as_bool() => other,
        (other, ValSrc::Imm(w)) if !w.as_bool() => other,
        (ValSrc::Imm(w), _) | (_, ValSrc::Imm(w)) if w.as_bool() => ValSrc::Imm(Word::ONE),
        _ => {
            let n = b.push(DfgOp::Binary(BinaryOp::Or), vec![x, y], None);
            b.ensure_fires(n);
            ValSrc::Node(n)
        }
    }
}

/// Merges incoming `(edge predicate, exit value map)` pairs at a control
/// join: the block predicate is the OR of edge predicates; register values
/// that differ across paths become selects keyed by the edge predicates.
fn merge_incoming(
    b: &mut DfgBuilder,
    incoming: Vec<(ValSrc, &HashMap<Reg, ValSrc>)>,
    live_in: &std::collections::BTreeSet<Reg>,
) -> (ValSrc, HashMap<Reg, ValSrc>) {
    assert!(!incoming.is_empty(), "non-entry block with no predecessors");
    let mut pred = incoming[0].0;
    for &(p, _) in &incoming[1..] {
        pred = or_preds(b, pred, p);
    }

    // Only registers live into the join block need merging.
    let mut regs: Vec<Reg> = incoming
        .iter()
        .flat_map(|(_, m)| m.keys().copied())
        .filter(|r| live_in.contains(r))
        .collect();
    regs.sort_unstable();
    regs.dedup();

    let mut merged = HashMap::new();
    for r in regs {
        let mut val = incoming[0]
            .1
            .get(&r)
            .copied()
            .unwrap_or(ValSrc::Imm(Word::ZERO));
        for &(edge_pred, m) in &incoming[1..] {
            let v = m.get(&r).copied().unwrap_or(ValSrc::Imm(Word::ZERO));
            if v != val {
                // val = edge_pred ? v : val
                let n = b.push(DfgOp::Select, vec![edge_pred, v, val], None);
                b.ensure_fires(n);
                val = ValSrc::Node(n);
            }
        }
        merged.insert(r, val);
    }
    (pred, merged)
}

/// Builds the gate input of a predicated store: combines the block
/// predicate with ordering tokens. Returns `None` when the store is both
/// unconditional and unordered.
fn store_gate(b: &mut DfgBuilder, pred: ValSrc, order: Vec<NodeId>) -> Option<ValSrc> {
    let is_true = matches!(pred, ValSrc::Imm(w) if w.as_bool());
    match (is_true, order.is_empty()) {
        (true, true) => None,
        (true, false) => Some(ValSrc::Node(b.join_of(order))),
        (false, true) => Some(pred),
        (false, false) => {
            // JoinPass: passes the predicate (port 0) once ordering tokens
            // arrived. Collapse the ordering side first if it is wide.
            let order_tok = if order.len() <= 2 && order.len() < crate::dfg::MAX_PORTS {
                order
            } else {
                vec![b.join_of(order)]
            };
            let mut inputs = vec![pred];
            inputs.extend(order_tok.into_iter().map(ValSrc::Node));
            let n = b.push(DfgOp::JoinPass, inputs, None);
            b.ensure_fires(n);
            Some(ValSrc::Node(n))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgiw_ir::KernelBuilder;

    fn grid() -> GridSpec {
        GridSpec::paper()
    }

    #[test]
    fn straight_line_converts() {
        let mut b = KernelBuilder::new("k", 1);
        let tid = b.thread_id();
        let base = b.param(0);
        let a = b.add(base, tid);
        b.store(a, tid);
        let k = b.finish();
        let d = if_convert(&k, &grid()).expect("must convert");
        // No selects or predication needed.
        assert!(!d.nodes.iter().any(|n| matches!(n.op, DfgOp::Select)));
        let store = d
            .nodes
            .iter()
            .find(|n| matches!(n.op, DfgOp::Store))
            .unwrap();
        assert_eq!(store.inputs.len(), 2, "unconditional store is ungated");
    }

    #[test]
    fn divergent_stores_are_gated() {
        let mut b = KernelBuilder::new("k", 1);
        let tid = b.thread_id();
        let base = b.param(0);
        let addr = b.add(base, tid);
        let two = b.const_u32(2);
        let c = b.lt_u(tid, two);
        b.if_else(
            c,
            |b| {
                let v = b.const_u32(1);
                b.store(addr, v);
            },
            |b| {
                let v = b.const_u32(9);
                b.store(addr, v);
            },
        );
        let k = b.finish();
        let d = if_convert(&k, &grid()).unwrap();
        let gated = d
            .nodes
            .iter()
            .filter(|n| matches!(n.op, DfgOp::Store) && n.inputs.len() == 3)
            .count();
        assert_eq!(gated, 2, "both divergent stores must carry a gate");
        // No LVC traffic in SGMF: live values travel as direct edges.
        assert!(!d
            .nodes
            .iter()
            .any(|n| matches!(n.op, DfgOp::LvLoad(_) | DfgOp::LvStore(_))));
    }

    #[test]
    fn merged_values_become_selects() {
        let mut b = KernelBuilder::new("k", 1);
        let tid = b.thread_id();
        let base = b.param(0);
        let two = b.const_u32(2);
        let c = b.lt_u(tid, two);
        let zero = b.const_u32(0);
        let v = b.var(zero);
        b.if_else(
            c,
            |b| {
                let x = b.mul(tid, tid);
                b.set(v, x);
            },
            |b| {
                let one = b.const_u32(1);
                let x = b.add(tid, one);
                b.set(v, x);
            },
        );
        let addr = b.add(base, tid);
        let val = b.get(v);
        b.store(addr, val);
        let k = b.finish();
        let d = if_convert(&k, &grid()).unwrap();
        assert!(
            d.nodes.iter().any(|n| matches!(n.op, DfgOp::Select)),
            "control-merged value needs a select"
        );
    }

    #[test]
    fn loops_are_rejected() {
        let mut b = KernelBuilder::new("k", 0);
        let zero = b.const_u32(0);
        let i = b.var(zero);
        b.while_(
            |b| {
                let iv = b.get(i);
                let ten = b.const_u32(10);
                b.lt_u(iv, ten)
            },
            |b| {
                let iv = b.get(i);
                let one = b.const_u32(1);
                let n = b.add(iv, one);
                b.set(i, n);
            },
        );
        let k = b.finish();
        assert_eq!(if_convert(&k, &grid()), Err(IfConvertError::HasLoop));
    }

    #[test]
    fn oversized_kernels_are_rejected() {
        let mut b = KernelBuilder::new("k", 1);
        let tid = b.thread_id();
        let base = b.param(0);
        let mut acc = tid;
        for i in 0..200u32 {
            let c = b.const_u32(i);
            let t = b.add(acc, c);
            acc = b.mul(t, tid);
        }
        let a = b.add(base, tid);
        b.store(a, acc);
        let k = b.finish();
        assert!(matches!(
            if_convert(&k, &grid()),
            Err(IfConvertError::TooLarge { .. })
        ));
    }
}
