//! Place & route: assigning DFG nodes to physical grid units.
//!
//! Each basic block "undergoes a place and route sequence to generate a
//! static per-block configuration of the MT-CGRF core" (§3.1). We place
//! greedily in topological order (each node lands on the free unit of its
//! kind closest to its already-placed neighbours) and then run a
//! hill-climbing refinement pass that re-seats nodes to reduce total wire
//! length. Routing cost between two units is the interconnect hop count
//! from [`GridSpec::hop_distance`]; every hop is one cycle at runtime.

use crate::dfg::{Dfg, NodeId};
use crate::grid::{GridSpec, UnitId};

/// A mapping from DFG nodes to physical units (one replica's worth).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Placement {
    /// `node_unit[node]` is the unit executing that node.
    pub node_unit: Vec<UnitId>,
    /// Total wire cost (sum of hop distances over all edges).
    pub wire_cost: u32,
}

impl Placement {
    /// The unit hosting `node`.
    pub fn unit(&self, node: NodeId) -> UnitId {
        self.node_unit[node.index()]
    }

    /// The hop latency of the edge `producer -> consumer` under this
    /// placement (minimum 1 cycle even for adjacent units).
    pub fn edge_latency(&self, grid: &GridSpec, producer: NodeId, consumer: NodeId) -> u32 {
        grid.hop_distance(self.unit(producer), self.unit(consumer))
            .max(1)
    }
}

/// Places one replica of `dfg` onto the units still `free` in the grid.
///
/// On success, marks the consumed units as used in `free` and returns the
/// placement. Returns `None` when some unit kind runs out — the caller
/// stops replicating at that point.
pub fn place(dfg: &Dfg, grid: &GridSpec, free: &mut [bool]) -> Option<Placement> {
    assert_eq!(free.len(), grid.num_units(), "free map size mismatch");

    // Per-kind unit lists, computed once (placement consults them per node
    // per refinement pass).
    let kind_units: Vec<Vec<UnitId>> = crate::grid::UNIT_KINDS
        .iter()
        .map(|&k| grid.units_of_kind(k))
        .collect();
    let units_of = |kind: crate::grid::UnitKind| -> &[UnitId] {
        &kind_units[crate::grid::UNIT_KINDS
            .iter()
            .position(|&k| k == kind)
            .expect("known kind")]
    };

    // Quick capacity check against what is actually free.
    let needed = dfg.kind_counts();
    for kind in crate::grid::UNIT_KINDS {
        let avail = units_of(kind).iter().filter(|u| free[u.index()]).count() as u32;
        if needed.get(kind) > avail {
            return None;
        }
    }

    let consumers = dfg.consumers();
    // Predecessors (dynamic only).
    let mut preds: Vec<Vec<NodeId>> = vec![Vec::new(); dfg.nodes.len()];
    for (p, cons) in consumers.iter().enumerate() {
        for &(c, _) in cons {
            preds[c.index()].push(NodeId(p as u32));
        }
    }

    // Topological order via Kahn's algorithm.
    let order = topo_order(dfg, &consumers);

    let center = {
        let (w, h) = (grid.width(), grid.height());
        (w as f64 / 2.0, h as f64 / 2.0)
    };

    let mut node_unit: Vec<Option<UnitId>> = vec![None; dfg.nodes.len()];
    for &node in &order {
        let kind = dfg.nodes[node.index()].op.unit_kind();
        let placed_preds: Vec<UnitId> = preds[node.index()]
            .iter()
            .filter_map(|p| node_unit[p.index()])
            .collect();
        let candidates = units_of(kind).iter().copied().filter(|u| free[u.index()]);
        let best = candidates.min_by_key(|&u| {
            if placed_preds.is_empty() {
                // No placed fan-in: prefer central positions (scaled to keep
                // integer keys).
                let (x, y) = grid.position(u);
                let dx = x as f64 + 0.5 - center.0;
                let dy = y as f64 + 0.5 - center.1;
                ((dx.abs() + dy.abs()) * 4.0) as u32
            } else {
                placed_preds.iter().map(|&p| grid.hop_distance(p, u)).sum()
            }
        })?;
        free[best.index()] = false;
        node_unit[node.index()] = Some(best);
    }

    let mut node_unit: Vec<UnitId> = node_unit
        .into_iter()
        .map(|u| u.expect("all nodes placed"))
        .collect();

    // Refinement: re-seat each node on any free-or-own unit of its kind if
    // it lowers the local wire cost. Two passes are enough at this scale.
    for _ in 0..2 {
        for &node in &order {
            let kind = dfg.nodes[node.index()].op.unit_kind();
            let local_cost = |unit: UnitId, node_unit: &[UnitId]| -> u32 {
                let mut cost = 0;
                for p in &preds[node.index()] {
                    cost += grid.hop_distance(node_unit[p.index()], unit);
                }
                for &(c, _) in &consumers[node.index()] {
                    cost += grid.hop_distance(unit, node_unit[c.index()]);
                }
                cost
            };
            let current = node_unit[node.index()];
            let mut best = current;
            let mut best_cost = local_cost(current, &node_unit);
            for &u in units_of(kind) {
                if u != current && free[u.index()] {
                    let c = local_cost(u, &node_unit);
                    if c < best_cost {
                        best = u;
                        best_cost = c;
                    }
                }
            }
            if best != current {
                free[current.index()] = true;
                free[best.index()] = false;
                node_unit[node.index()] = best;
            }
        }
    }

    let mut wire_cost = 0;
    for (p, cons) in consumers.iter().enumerate() {
        for &(c, _) in cons {
            wire_cost += grid.hop_distance(node_unit[p], node_unit[c.index()]);
        }
    }
    Some(Placement {
        node_unit,
        wire_cost,
    })
}

fn topo_order(dfg: &Dfg, consumers: &[Vec<(NodeId, u8)>]) -> Vec<NodeId> {
    let n = dfg.nodes.len();
    let mut indeg = vec![0u32; n];
    for cons in consumers {
        for &(c, _) in cons {
            indeg[c.index()] += 1;
        }
    }
    let mut stack: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(v) = stack.pop() {
        order.push(NodeId(v as u32));
        for &(c, _) in &consumers[v] {
            indeg[c.index()] -= 1;
            if indeg[c.index()] == 0 {
                stack.push(c.index());
            }
        }
    }
    debug_assert_eq!(order.len(), n, "DFG must be acyclic");
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfg::build_block_dfg;
    use crate::liveness;
    use vgiw_ir::{BlockId, KernelBuilder};

    fn small_dfg() -> Dfg {
        let mut b = KernelBuilder::new("k", 1);
        let tid = b.thread_id();
        let base = b.param(0);
        let addr = b.add(base, tid);
        let v = b.mul(tid, tid);
        b.store(addr, v);
        let k = b.finish();
        let lv = liveness::analyze(&k);
        build_block_dfg(&k, BlockId(0), &lv)
    }

    #[test]
    fn placement_is_legal() {
        let grid = GridSpec::paper();
        let dfg = small_dfg();
        let mut free = vec![true; grid.num_units()];
        let p = place(&dfg, &grid, &mut free).expect("small graph must place");
        // Kind compatibility.
        for (i, node) in dfg.nodes.iter().enumerate() {
            assert_eq!(grid.kind(p.node_unit[i]), node.op.unit_kind());
        }
        // No double occupancy.
        let mut seen = std::collections::HashSet::new();
        for &u in &p.node_unit {
            assert!(seen.insert(u), "unit {u:?} used twice");
            assert!(!free[u.index()], "placed unit must be marked used");
        }
    }

    #[test]
    fn multiple_replicas_use_disjoint_units() {
        let grid = GridSpec::paper();
        let dfg = small_dfg();
        let mut free = vec![true; grid.num_units()];
        let p1 = place(&dfg, &grid, &mut free).unwrap();
        let p2 = place(&dfg, &grid, &mut free).unwrap();
        let s1: std::collections::HashSet<_> = p1.node_unit.iter().collect();
        assert!(p2.node_unit.iter().all(|u| !s1.contains(u)));
    }

    #[test]
    fn placement_fails_when_capacity_exhausted() {
        let grid = GridSpec::paper();
        let dfg = small_dfg();
        let mut free = vec![false; grid.num_units()];
        assert!(place(&dfg, &grid, &mut free).is_none());
    }

    #[test]
    fn connected_nodes_end_up_close() {
        let grid = GridSpec::paper();
        let dfg = small_dfg();
        let mut free = vec![true; grid.num_units()];
        let p = place(&dfg, &grid, &mut free).unwrap();
        // Average edge latency should be small on an uncongested grid.
        let consumers = dfg.consumers();
        let mut total = 0u32;
        let mut edges = 0u32;
        for (prod, cons) in consumers.iter().enumerate() {
            for &(c, _) in cons {
                total += p.edge_latency(&grid, NodeId(prod as u32), c);
                edges += 1;
            }
        }
        assert!(edges > 0);
        let avg = total as f64 / edges as f64;
        assert!(avg <= 4.0, "average edge latency too high: {avg}");
    }
}
