//! Capacity-driven basic block splitting.
//!
//! VGIW "preserves the generality of the von Neumann model for partitioning
//! and executing large kernels" (§1): a basic block whose dataflow graph
//! exceeds the MT-CGRF's per-kind unit capacity is split into a chain of
//! smaller blocks connected by unconditional jumps, with the values crossing
//! the new boundary spilled through the live value cache like any other
//! cross-block value. This is what frees VGIW from SGMF's kernel-size limit.

use crate::dfg::build_block_dfg;
use crate::grid::GridSpec;
use crate::liveness;
use std::error::Error;
use std::fmt;
use vgiw_ir::{BasicBlock, BlockId, Kernel, Terminator};

/// Failure to make a kernel fit the grid.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SplitError {
    /// A single instruction's node set exceeds grid capacity (cannot
    /// happen with realistic grids; guards against degenerate configs).
    Unsplittable {
        /// The offending block after the last split attempt.
        block: BlockId,
    },
    /// Splitting did not converge within the iteration budget.
    Diverged,
}

impl fmt::Display for SplitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SplitError::Unsplittable { block } => {
                write!(f, "block {block} cannot be split to fit the grid")
            }
            SplitError::Diverged => write!(f, "block splitting did not converge"),
        }
    }
}

impl Error for SplitError {}

/// Splits oversized blocks until every block's DFG fits the grid, then
/// renumbers blocks in scheduling order.
///
/// # Errors
/// Returns [`SplitError`] if a block cannot be made to fit.
pub fn split_to_fit(kernel: &Kernel, grid: &GridSpec) -> Result<Kernel, SplitError> {
    let mut k = kernel.clone();
    let capacity = grid.capacity();
    // Each split adds one block; a generous budget that still guarantees
    // termination on compiler bugs.
    let budget = 64 + k.static_size();
    for _ in 0..budget {
        let lv = liveness::analyze(&k);
        let mut offender = None;
        for i in 0..k.num_blocks() {
            let block = BlockId(i as u32);
            let dfg = build_block_dfg(&k, block, &lv);
            if !dfg.kind_counts().fits_in(&capacity) {
                offender = Some(block);
                break;
            }
        }
        let Some(block) = offender else {
            vgiw_ir::cfg::renumber_rpo(&mut k);
            return Ok(k);
        };
        let len = k.block(block).insts.len();
        if len < 2 {
            return Err(SplitError::Unsplittable { block });
        }
        // Split where the fewest values cross the new boundary (each
        // crossing value becomes LVC traffic), keeping both halves
        // reasonably sized; iteration handles still-too-big halves.
        let cut = best_cut(&k, block, &lv);
        let remat = remat_prologue(&k, block, cut);
        let mut tail_insts = k.block_mut(block).insts.split_off(cut);
        let orig_term = k.block(block).term;
        if remat.len() + tail_insts.len() < len {
            // Rematerialize cheap crossing values (address arithmetic over
            // parameters/constants/thread IDs) at the top of the tail block
            // instead of spilling them through the LVC.
            let mut pro = remat;
            pro.extend(tail_insts);
            tail_insts = pro;
        }
        let new_block = k.push_block();
        *k.block_mut(new_block) = BasicBlock {
            insts: tail_insts,
            term: orig_term,
        };
        k.block_mut(block).term = Terminator::Jump(new_block);
    }
    Err(SplitError::Diverged)
}

/// Chooses the cut position in `block` that minimizes the number of
/// registers defined before the cut and consumed at-or-after it (or live
/// out of the block), with a mild preference for balanced halves.
fn best_cut(kernel: &Kernel, block: BlockId, lv: &liveness::Liveness) -> usize {
    let insts = &kernel.block(block).insts;
    let len = insts.len();
    let live_out = &lv.live_out[block.index()];

    // For each register, the first definition index and the last use index
    // within the block (terminator counts as a use at `len`).
    use std::collections::HashMap;
    let mut first_def: HashMap<vgiw_ir::Reg, usize> = HashMap::new();
    let mut last_use: HashMap<vgiw_ir::Reg, usize> = HashMap::new();
    for (i, inst) in insts.iter().enumerate() {
        inst.for_each_use(|r| {
            last_use.insert(r, i);
        });
        if let Some(d) = inst.dst() {
            first_def.entry(d).or_insert(i);
        }
    }
    if let Some(r) = kernel.block(block).term.use_reg() {
        last_use.insert(r, len);
    }

    let mut best = len / 2;
    let mut best_cost = usize::MAX;
    // Keep halves at least a quarter of the block to guarantee progress.
    let lo = (len / 4).max(1);
    let hi = len - lo;
    for cut in lo..=hi {
        let mut crossing = 0usize;
        for (&r, &def) in &first_def {
            if def < cut {
                let used_after = last_use.get(&r).is_some_and(|&u| u >= cut);
                if used_after || live_out.contains(&r) {
                    crossing += 1;
                }
            }
        }
        // Prefer balanced cuts on ties.
        let imbalance = cut.abs_diff(len / 2);
        let cost = crossing * len + imbalance;
        if cost < best_cost {
            best_cost = cost;
            best = cut;
        }
    }
    best
}

/// Builds a rematerialization prologue for a split at `cut`: for each
/// register defined before the cut and consumed after it, if its defining
/// expression is a short chain over parameters, constants and thread IDs,
/// emit that chain again instead of letting the value spill to the LVC.
fn remat_prologue(kernel: &Kernel, block: BlockId, cut: usize) -> Vec<vgiw_ir::Inst> {
    use std::collections::HashMap;
    use vgiw_ir::{Inst, Reg};
    const PER_VALUE: usize = 6;
    const TOTAL: usize = 24;

    let insts = &kernel.block(block).insts;
    // Last definition index of each register in the head.
    let mut last_def: HashMap<Reg, usize> = HashMap::new();
    for (i, inst) in insts.iter().take(cut).enumerate() {
        if let Some(d) = inst.dst() {
            last_def.insert(d, i);
        }
    }
    // Crossing = defined in head, used in tail (conservatively: any use).
    let mut crossing: Vec<Reg> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for inst in insts.iter().skip(cut) {
        inst.for_each_use(|r| {
            if last_def.contains_key(&r) && seen.insert(r) {
                crossing.push(r);
            }
        });
    }
    if let Some(r) = kernel.block(block).term.use_reg() {
        if last_def.contains_key(&r) && seen.insert(r) {
            crossing.push(r);
        }
    }

    /// Collects the instruction indices needed to recompute `r`, or fails
    /// if the chain is not rematerializable within the budget.
    /// `depth` bounds the descent (the accumulator only fills on unwind).
    fn chain(
        insts: &[Inst],
        last_def: &HashMap<Reg, usize>,
        r: Reg,
        acc: &mut Vec<usize>,
        budget: usize,
        depth: usize,
    ) -> bool {
        let Some(&d) = last_def.get(&r) else {
            // Defined before the block (or tid/param handled elsewhere):
            // available in the tail anyway via its own LVC slot / initiator.
            return true;
        };
        if acc.contains(&d) {
            return true;
        }
        if depth >= budget || acc.len() >= budget {
            return false;
        }
        let inst = &insts[d];
        let ok = match inst {
            Inst::Const { .. } | Inst::Param { .. } | Inst::ThreadId { .. } => true,
            Inst::Unary { .. } | Inst::Binary { .. } | Inst::Select { .. } | Inst::Fma { .. } => {
                let mut ok = true;
                inst.for_each_use(|u| {
                    if !ok {
                        return;
                    }
                    match last_def.get(&u) {
                        // Recomputing at the cut must see the same operand
                        // value the original def saw: the operand's last
                        // head definition must strictly precede this def
                        // (`>=` also rejects self-referencing instructions
                        // like `r = add r, 1`, which are not functional
                        // expressions and must spill).
                        Some(&du) if du >= d => ok = false,
                        Some(_) => ok = chain(insts, last_def, u, acc, budget, depth + 1),
                        None => {}
                    }
                });
                ok
            }
            Inst::Load { .. } | Inst::Store { .. } => false,
        };
        if ok {
            acc.push(d);
        }
        ok
    }

    let mut out_idx: Vec<usize> = Vec::new();
    for r in crossing {
        let mut acc = Vec::new();
        if chain(insts, &last_def, r, &mut acc, PER_VALUE, 0) {
            for d in acc {
                if !out_idx.contains(&d) {
                    if out_idx.len() >= TOTAL {
                        return collect(insts, out_idx);
                    }
                    out_idx.push(d);
                }
            }
        }
    }
    collect(insts, out_idx)
}

fn collect(insts: &[vgiw_ir::Inst], mut idx: Vec<usize>) -> Vec<vgiw_ir::Inst> {
    idx.sort_unstable();
    idx.into_iter().map(|i| insts[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgiw_ir::{interp, KernelBuilder, Launch, MemoryImage, Word};

    /// A kernel whose single block needs far more than 32 ALUs.
    fn huge_block_kernel() -> Kernel {
        let mut b = KernelBuilder::new("huge", 1);
        let tid = b.thread_id();
        let base = b.param(0);
        let mut acc = tid;
        for i in 0..150u32 {
            let c = b.const_u32(i);
            let t = b.add(acc, c);
            acc = b.mul(t, tid);
        }
        let addr = b.add(base, tid);
        b.store(addr, acc);
        b.finish()
    }

    #[test]
    fn oversized_blocks_get_split() {
        let k = huge_block_kernel();
        assert_eq!(k.num_blocks(), 1);
        let grid = GridSpec::paper();
        let split = split_to_fit(&k, &grid).expect("splitting must succeed");
        assert!(split.num_blocks() > 1, "a 300-op block must be split");

        // Every block now fits.
        let lv = liveness::analyze(&split);
        let cap = grid.capacity();
        for i in 0..split.num_blocks() {
            let d = build_block_dfg(&split, BlockId(i as u32), &lv);
            assert!(d.kind_counts().fits_in(&cap), "block {i} still too big");
        }
    }

    #[test]
    fn splitting_preserves_semantics() {
        let k = huge_block_kernel();
        let grid = GridSpec::paper();
        let split = split_to_fit(&k, &grid).unwrap();

        let launch = Launch::new(16, vec![Word::from_u32(0)]);
        let mut m1 = MemoryImage::new(32);
        interp::run(&k, &launch, &mut m1).unwrap();
        let mut m2 = MemoryImage::new(32);
        interp::run(&split, &launch, &mut m2).unwrap();
        assert!(m1 == m2, "split kernel must compute the same results");
    }

    #[test]
    fn small_kernels_are_untouched() {
        let mut b = KernelBuilder::new("small", 1);
        let tid = b.thread_id();
        let base = b.param(0);
        let addr = b.add(base, tid);
        b.store(addr, tid);
        let k = b.finish();
        let split = split_to_fit(&k, &GridSpec::paper()).unwrap();
        assert_eq!(split.num_blocks(), k.num_blocks());
    }

    #[test]
    fn divergent_kernels_survive_splitting() {
        // Oversized then-branch inside divergent control flow.
        let mut b = KernelBuilder::new("div", 1);
        let tid = b.thread_id();
        let base = b.param(0);
        let eight = b.const_u32(8);
        let c = b.lt_u(tid, eight);
        let addr = b.add(base, tid);
        b.if_else(
            c,
            |b| {
                let mut acc = tid;
                for i in 0..120u32 {
                    let k = b.const_u32(i * 7 + 1);
                    let t = b.mul(acc, k);
                    acc = b.add(t, tid);
                }
                b.store(addr, acc);
            },
            |b| {
                b.store(addr, tid);
            },
        );
        let k = b.finish();
        let grid = GridSpec::paper();
        let split = split_to_fit(&k, &grid).unwrap();
        assert!(split.num_blocks() > k.num_blocks());

        let launch = Launch::new(16, vec![Word::from_u32(0)]);
        let mut m1 = MemoryImage::new(32);
        interp::run(&k, &launch, &mut m1).unwrap();
        let mut m2 = MemoryImage::new(32);
        interp::run(&split, &launch, &mut m2).unwrap();
        assert!(m1 == m2);
    }
}
