//! The top-level VGIW compilation driver and its output artifact.
//!
//! [`compile`] runs the whole §3.1 pipeline: capacity-driven block
//! splitting, scheduling-order renumbering, live value allocation,
//! per-block dataflow graph lowering, replica packing and place & route.
//! The resulting [`CompiledKernel`] is what the basic block scheduler loads
//! at launch time.

use crate::dfg::{build_block_dfg, Dfg};
use crate::grid::{GridSpec, UNIT_KINDS};
use crate::liveness::{self, Liveness};
use crate::place::{place, Placement};
use crate::split::{split_to_fit, SplitError};
use std::error::Error;
use std::fmt;
use vgiw_ir::{BlockId, Kernel};

/// Hard cap on replicas of one block (each replica consumes an initiator
/// and a terminator CVU; 16 CVUs bound this at 8 anyway).
pub const MAX_REPLICAS: u32 = 8;

/// One basic block, lowered and mapped.
#[derive(Clone, Debug)]
pub struct CompiledBlock {
    /// The block's dataflow graph (one replica's worth of nodes).
    pub dfg: Dfg,
    /// One placement per replica mapped onto the grid (disjoint units).
    pub replicas: Vec<Placement>,
}

impl CompiledBlock {
    /// Number of replicas mapped.
    pub fn num_replicas(&self) -> u32 {
        self.replicas.len() as u32
    }
}

/// A kernel compiled for the VGIW core.
#[derive(Clone, Debug)]
pub struct CompiledKernel {
    /// The (possibly split and renumbered) kernel the blocks came from.
    pub kernel: Kernel,
    /// Per-block artifacts, indexed by [`BlockId`].
    pub blocks: Vec<CompiledBlock>,
    /// Liveness/live-value allocation shared by all blocks.
    pub liveness: Liveness,
}

impl CompiledKernel {
    /// Number of live value slots in the LVC-backed matrix.
    pub fn num_live_values(&self) -> u32 {
        self.liveness.num_live_values
    }

    /// The compiled artifact for `block`.
    ///
    /// # Panics
    /// Panics if `block` is out of range.
    pub fn block(&self, block: BlockId) -> &CompiledBlock {
        &self.blocks[block.index()]
    }
}

/// Compilation failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CompileError {
    /// Block splitting could not make the kernel fit the grid.
    Split(SplitError),
    /// A block that passed the capacity check failed place & route (would
    /// indicate an internal inconsistency).
    PlacementFailed {
        /// The offending block.
        block: BlockId,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Split(e) => write!(f, "block splitting failed: {e}"),
            CompileError::PlacementFailed { block } => {
                write!(f, "place & route failed for {block}")
            }
        }
    }
}

impl Error for CompileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CompileError::Split(e) => Some(e),
            CompileError::PlacementFailed { .. } => None,
        }
    }
}

impl From<SplitError> for CompileError {
    fn from(e: SplitError) -> CompileError {
        CompileError::Split(e)
    }
}

/// Compiles a kernel for the given grid.
///
/// # Errors
/// Returns [`CompileError`] when the kernel cannot be made to fit.
pub fn compile(kernel: &Kernel, grid: &GridSpec) -> Result<CompiledKernel, CompileError> {
    let kernel = split_to_fit(kernel, grid)?;
    let liveness = liveness::analyze(&kernel);
    let capacity = grid.capacity();

    let mut blocks = Vec::with_capacity(kernel.num_blocks());
    for i in 0..kernel.num_blocks() {
        let block = BlockId(i as u32);
        let dfg = build_block_dfg(&kernel, block, &liveness);
        let counts = dfg.kind_counts();
        debug_assert!(counts.fits_in(&capacity), "split_to_fit guarantees fit");

        // Replica count: how many copies fit, by the scarcest unit kind
        // ("for small basic blocks, the compiler includes multiple replicas
        // of a block's graph", §3.1).
        let mut max_replicas = MAX_REPLICAS;
        for kind in UNIT_KINDS {
            // checked_div: a kind the block does not use imposes no bound.
            if let Some(fit) = capacity.get(kind).checked_div(counts.get(kind)) {
                max_replicas = max_replicas.min(fit);
            }
        }
        debug_assert!(max_replicas >= 1);

        let mut free = vec![true; grid.num_units()];
        let mut replicas = Vec::new();
        for _ in 0..max_replicas {
            match place(&dfg, grid, &mut free) {
                Some(p) => replicas.push(p),
                None => break,
            }
        }
        if replicas.is_empty() {
            return Err(CompileError::PlacementFailed { block });
        }
        blocks.push(CompiledBlock { dfg, replicas });
    }

    Ok(CompiledKernel {
        kernel,
        blocks,
        liveness,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgiw_ir::KernelBuilder;

    fn saxpy() -> Kernel {
        let mut b = KernelBuilder::new("saxpy", 4); // x, y, a, n
        let tid = b.thread_id();
        let n = b.param(3);
        let c = b.lt_u(tid, n);
        b.if_(c, |b| {
            let xbase = b.param(0);
            let ybase = b.param(1);
            let a = b.param(2);
            let xa = b.add(xbase, tid);
            let x = b.load(xa);
            let ya = b.add(ybase, tid);
            let y = b.load(ya);
            let v = b.fma(a, x, y);
            b.store(ya, v);
        });
        b.finish()
    }

    #[test]
    fn compile_saxpy() {
        let grid = GridSpec::paper();
        let ck = compile(&saxpy(), &grid).expect("saxpy must compile");
        assert_eq!(ck.blocks.len(), ck.kernel.num_blocks());
        // The only value crossing into the then-block is the thread index,
        // which the initiator rebroadcasts — no LVC slots needed.
        assert_eq!(ck.num_live_values(), 0);
        // Small blocks should be replicated.
        for cb in &ck.blocks {
            assert!(cb.num_replicas() >= 2, "small blocks should replicate");
            // Replicas occupy disjoint units.
            let mut seen = std::collections::HashSet::new();
            for r in &cb.replicas {
                for &u in &r.node_unit {
                    assert!(seen.insert(u), "replicas overlap on {u:?}");
                }
            }
        }
    }

    #[test]
    fn replica_count_respects_scarcest_resource() {
        // A block with 9 loads can have at most one replica (16 LDST units,
        // 9*2 = 18 > 16).
        let mut b = KernelBuilder::new("loady", 1);
        let tid = b.thread_id();
        let base = b.param(0);
        let mut acc = tid;
        for i in 0..9u32 {
            let off = b.const_u32(i * 64);
            let a = b.add(base, off);
            let v = b.load(a);
            acc = b.add(acc, v);
        }
        let out = b.add(base, tid);
        b.store(out, acc);
        let k = b.finish();
        let ck = compile(&k, &GridSpec::paper()).unwrap();
        // 9 loads + 1 store = 10 LDST nodes per replica; 16/10 = 1.
        assert_eq!(ck.blocks[0].num_replicas(), 1);
    }

    #[test]
    fn trivial_kernel_gets_max_replicas() {
        let mut b = KernelBuilder::new("t", 1);
        let tid = b.thread_id();
        let base = b.param(0);
        let a = b.add(base, tid);
        b.store(a, tid);
        let k = b.finish();
        let ck = compile(&k, &GridSpec::paper()).unwrap();
        // init+term (2 CVU), 1 ALU, 1 LDST per replica -> CVU bound = 8.
        assert_eq!(ck.blocks[0].num_replicas(), MAX_REPLICAS);
    }
}
