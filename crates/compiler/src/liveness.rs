//! Register liveness and live value allocation.
//!
//! The VGIW compiler "assigns a live value ID for each intermediate value
//! that crosses block boundaries ... The mapping process is similar to
//! traditional register allocation" (§3.1). We compute classic backward
//! liveness over the kernel's registers; every register that is live into
//! any block gets a [`LiveValueId`] and will be communicated through the
//! live value cache, while block-local registers stay as direct dataflow
//! edges inside the MT-CGRF.

use std::collections::BTreeSet;
use vgiw_ir::{BlockId, Kernel, Reg};

/// Identifier of a live value slot in the LVC-backed live value matrix.
///
/// At runtime, thread `t`'s copy of live value `l` lives at word address
/// `matrix_base + l * num_threads + t` (the paper's 2-D array indexed by
/// live value ID and thread ID, §2).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LiveValueId(pub u32);

impl LiveValueId {
    /// The slot index as a usize.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Result of liveness analysis over one kernel.
#[derive(Clone, Debug)]
pub struct Liveness {
    /// Registers that always hold the thread index (defined only by
    /// `ThreadId` or copies of such registers). They never use the LVC:
    /// every block's initiator CVU re-broadcasts the thread coordinates
    /// (§3.5), exactly like the hardware.
    pub tid_regs: Vec<bool>,
    /// `live_in[b]`: registers live at entry of block `b`.
    pub live_in: Vec<BTreeSet<Reg>>,
    /// `live_out[b]`: registers live at exit of block `b`.
    pub live_out: Vec<BTreeSet<Reg>>,
    /// `upward_exposed[b]`: registers read in `b` before any write in `b`.
    pub upward_exposed: Vec<BTreeSet<Reg>>,
    /// `defs[b]`: registers written in `b`.
    pub defs: Vec<BTreeSet<Reg>>,
    /// Live value slot for each register, or `None` for block-local regs.
    pub slot_of_reg: Vec<Option<LiveValueId>>,
    /// Number of allocated live value slots.
    pub num_live_values: u32,
}

impl Liveness {
    /// The live value slot assigned to `reg`, if it crosses blocks.
    pub fn slot(&self, reg: Reg) -> Option<LiveValueId> {
        self.slot_of_reg[reg.index()]
    }

    /// Whether `reg` always holds the thread index (no LVC needed).
    pub fn is_tid(&self, reg: Reg) -> bool {
        self.tid_regs[reg.index()]
    }

    /// Registers that must be loaded from the LVC at entry to `block`
    /// (live-in *and* read before written there; tid-aliased registers
    /// come from the initiator instead).
    pub fn lvc_loads(&self, block: BlockId) -> impl Iterator<Item = Reg> + '_ {
        self.upward_exposed[block.index()]
            .iter()
            .copied()
            .filter(move |r| self.live_in[block.index()].contains(r) && !self.is_tid(*r))
    }

    /// Registers whose final in-block definition must be stored to the LVC
    /// at `block` (defined there *and* live out; tid-aliased registers are
    /// never stored).
    pub fn lvc_stores(&self, block: BlockId) -> impl Iterator<Item = Reg> + '_ {
        self.defs[block.index()]
            .iter()
            .copied()
            .filter(move |r| self.live_out[block.index()].contains(r) && !self.is_tid(*r))
    }
}

/// Computes backward liveness and allocates live value IDs.
pub fn analyze(kernel: &Kernel) -> Liveness {
    let nb = kernel.num_blocks();
    let mut upward_exposed = vec![BTreeSet::new(); nb];
    let mut defs = vec![BTreeSet::new(); nb];

    for (id, block) in kernel.iter_blocks() {
        let b = id.index();
        for inst in &block.insts {
            inst.for_each_use(|r| {
                if !defs[b].contains(&r) {
                    upward_exposed[b].insert(r);
                }
            });
            if let Some(d) = inst.dst() {
                defs[b].insert(d);
            }
        }
        if let Some(r) = block.term.use_reg() {
            if !defs[b].contains(&r) {
                upward_exposed[b].insert(r);
            }
        }
    }

    let mut live_in: Vec<BTreeSet<Reg>> = upward_exposed.clone();
    let mut live_out: Vec<BTreeSet<Reg>> = vec![BTreeSet::new(); nb];

    // Iterate to fixpoint (backward problem; RPO-reversed order converges
    // fast on reducible CFGs).
    let rpo = vgiw_ir::cfg::reverse_post_order(kernel);
    let mut changed = true;
    while changed {
        changed = false;
        for &id in rpo.iter().rev() {
            let b = id.index();
            let mut out = BTreeSet::new();
            for succ in kernel.block(id).term.successors() {
                out.extend(live_in[succ.index()].iter().copied());
            }
            if out != live_out[b] {
                live_out[b] = out;
                changed = true;
            }
            let mut inn = upward_exposed[b].clone();
            for &r in &live_out[b] {
                if !defs[b].contains(&r) {
                    inn.insert(r);
                }
            }
            if inn != live_in[b] {
                live_in[b] = inn;
                changed = true;
            }
        }
    }
    let tid_regs = tid_aliases(kernel);

    // A register crosses block boundaries iff it is live into any block;
    // tid-aliased registers are rebroadcast by the initiator instead.
    let mut slot_of_reg = vec![None; kernel.num_regs as usize];
    let mut next = 0u32;
    for li in &live_in {
        for &r in li {
            if slot_of_reg[r.index()].is_none() && !tid_regs[r.index()] {
                slot_of_reg[r.index()] = Some(LiveValueId(next));
                next += 1;
            }
        }
    }

    Liveness {
        tid_regs,
        live_in,
        live_out,
        upward_exposed,
        defs,
        slot_of_reg,
        num_live_values: next,
    }
}

/// Registers whose every definition is `ThreadId` or a copy of another
/// tid-aliased register (fixpoint over `Mov` chains).
fn tid_aliases(kernel: &Kernel) -> Vec<bool> {
    use vgiw_ir::{Inst, Operand, UnaryOp};
    let n = kernel.num_regs as usize;
    // Least fixpoint from below: a register becomes tid-aliased only once
    // *every* definition of it is `ThreadId` or a copy of an
    // already-tid-aliased register. Starting from `false` means cycles of
    // copies with no `ThreadId` root (e.g. `x = mov y; y = mov x`)
    // correctly stay non-aliased.
    let mut is_tid = vec![false; n];
    let mut changed = true;
    while changed {
        changed = false;
        for r in 0..n {
            if is_tid[r] {
                continue;
            }
            let mut any_def = false;
            let mut all_tid = true;
            for (_, block) in kernel.iter_blocks() {
                for inst in &block.insts {
                    if inst.dst() != Some(vgiw_ir::Reg(r as u32)) {
                        continue;
                    }
                    any_def = true;
                    let ok = match *inst {
                        Inst::ThreadId { .. } => true,
                        Inst::Unary {
                            op: UnaryOp::Mov,
                            src: Operand::Reg(s),
                            ..
                        } => is_tid[s.index()],
                        _ => false,
                    };
                    all_tid &= ok;
                }
            }
            if any_def && all_tid {
                is_tid[r] = true;
                changed = true;
            }
        }
    }
    is_tid
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgiw_ir::KernelBuilder;

    #[test]
    fn straight_line_kernel_has_no_live_values() {
        let mut b = KernelBuilder::new("k", 1);
        let tid = b.thread_id();
        let base = b.param(0);
        let addr = b.add(base, tid);
        let v = b.mul(tid, tid);
        b.store(addr, v);
        let k = b.finish();
        let lv = analyze(&k);
        assert_eq!(lv.num_live_values, 0);
        assert!(lv.slot_of_reg.iter().all(Option::is_none));
    }

    #[test]
    fn values_crossing_an_if_get_slots() {
        let mut b = KernelBuilder::new("k", 1);
        let tid = b.thread_id();
        let base = b.param(0);
        let addr = b.add(base, tid); // crosses into the then-block
        let two = b.const_u32(2);
        let c = b.lt_u(tid, two);
        b.if_(c, |b| {
            let v = b.const_u32(1);
            b.store(addr, v);
        });
        let k = b.finish();
        let lv = analyze(&k);
        // `addr` is live into the then-block.
        assert!(lv.num_live_values >= 1);
        let then_block = BlockId(1);
        let loads: Vec<Reg> = lv.lvc_loads(then_block).collect();
        assert!(
            !loads.is_empty(),
            "then-block must load the address from the LVC"
        );
        // The entry block must store it.
        let stores: Vec<Reg> = lv.lvc_stores(BlockId(0)).collect();
        assert_eq!(stores, loads);
    }

    #[test]
    fn loop_carried_variables_are_live() {
        let mut b = KernelBuilder::new("k", 0);
        let zero = b.const_u32(0);
        let i = b.var(zero);
        b.while_(
            |b| {
                let iv = b.get(i);
                let ten = b.const_u32(10);
                b.lt_u(iv, ten)
            },
            |b| {
                let iv = b.get(i);
                let one = b.const_u32(1);
                let n = b.add(iv, one);
                b.set(i, n);
            },
        );
        let k = b.finish();
        let lv = analyze(&k);
        assert!(
            lv.num_live_values >= 1,
            "loop induction variable must be a live value"
        );
        // Some block (the rotated loop body) must both load and store the
        // induction variable.
        let body = (0..k.num_blocks())
            .map(|i| BlockId(i as u32))
            .find(|&b| lv.lvc_loads(b).count() >= 1 && lv.lvc_stores(b).count() >= 1);
        assert!(body.is_some(), "rotated loop body must round-trip the LVC");
    }

    #[test]
    fn block_local_values_do_not_get_slots() {
        let mut b = KernelBuilder::new("k", 1);
        let tid = b.thread_id();
        let base = b.param(0);
        let two = b.const_u32(2);
        let c = b.lt_u(tid, two);
        b.if_(c, |b| {
            // Everything here is block-local.
            let t2 = b.mul(tid, tid);
            let t3 = b.add(t2, t2);
            let addr = b.add(base, tid);
            b.store(addr, t3);
        });
        let k = b.finish();
        let lv = analyze(&k);
        // tid and base cross (used in the then-block), but t2/t3/addr do not.
        let crossing = lv.slot_of_reg.iter().filter(|s| s.is_some()).count();
        assert_eq!(crossing as u32, lv.num_live_values);
        assert!(
            lv.num_live_values <= 3,
            "only tid/base/cond may cross, got {}",
            lv.num_live_values
        );
    }
}
