//! Fabric timing and sizing parameters.

/// Compute latencies per operation class, in core cycles.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct OpLatencies {
    /// Integer ALU ops (pipelined, single cycle).
    pub int_alu: u32,
    /// Pipelined FP ops (add/mul/fma/compare/convert).
    pub fp_alu: u32,
    /// Non-pipelined special ops (div/sqrt/exp/log) — occupies an SCU
    /// instance for this long.
    pub special: u32,
    /// Split/join units.
    pub split_join: u32,
    /// Control vector units (initiate/terminate).
    pub cvu: u32,
}

impl Default for OpLatencies {
    fn default() -> OpLatencies {
        OpLatencies {
            int_alu: 1,
            fp_alu: 4,
            special: 16,
            split_join: 1,
            cvu: 1,
        }
    }
}

/// Sizing and timing of the MT-CGRF fabric.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FabricConfig {
    /// Virtual execution channels per unit — the token buffer depth that
    /// bounds threads in flight per replica (§3.5).
    pub channels_per_unit: u32,
    /// Parallel instances inside each SCU (§3.5 "multiple instances of the
    /// circuits that implement the non-pipelined operations").
    pub scu_instances: u32,
    /// Reservation buffer entries per LDST/LVU unit: outstanding memory
    /// operations that may complete out of order (§3.5).
    pub reservation_entries: u32,
    /// Compute latencies.
    pub latencies: OpLatencies,
}

impl Default for FabricConfig {
    fn default() -> FabricConfig {
        FabricConfig {
            channels_per_unit: 256,
            scu_instances: 16,
            reservation_entries: 256,
            latencies: OpLatencies::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = FabricConfig::default();
        assert!(c.channels_per_unit >= 1);
        assert!(c.scu_instances >= 1);
        assert!(c.latencies.special > c.latencies.fp_alu);
    }
}
