//! A simple fixed-latency [`FabricEnv`] for tests and examples.
//!
//! Global memory and the live value matrix are plain arrays; every accepted
//! request completes after a fixed delay. Useful to exercise the fabric
//! without the full `vgiw-mem` hierarchy (the real VGIW processor in
//! `vgiw-core` wires the fabric to the banked caches instead).

use crate::fabric::{FabricEnv, MemReqId};
use std::collections::VecDeque;
use vgiw_ir::{MemoryImage, Word};

/// Fixed-latency memory environment backed by a [`MemoryImage`].
#[derive(Debug)]
pub struct FixedLatencyEnv {
    /// The global memory image.
    pub mem: MemoryImage,
    /// Live value matrix, indexed `lv * num_threads + tid`.
    pub lv: Vec<Word>,
    num_threads: u32,
    latency: u64,
    in_flight: VecDeque<(u64, MemReqId)>,
    now: u64,
    /// Total LVC accesses issued (loads + stores).
    pub lv_accesses: u64,
    /// Total global memory accesses issued.
    pub mem_accesses: u64,
}

impl FixedLatencyEnv {
    /// Creates an environment with the given completion `latency`.
    pub fn new(mem: MemoryImage, num_live_values: u32, num_threads: u32, latency: u64) -> Self {
        FixedLatencyEnv {
            mem,
            lv: vec![Word::ZERO; (num_live_values * num_threads) as usize],
            num_threads,
            latency,
            in_flight: VecDeque::new(),
            now: 0,
            lv_accesses: 0,
            mem_accesses: 0,
        }
    }

    /// The cycle at which the next in-flight request completes, if any
    /// (requests complete in FIFO order at fixed latency).
    pub fn next_event_cycle(&self) -> Option<u64> {
        self.in_flight.front().map(|&(t, _)| t)
    }

    /// Advances the clock by `k` cycles without completing anything.
    ///
    /// The caller must not skip past a scheduled completion (use
    /// [`FixedLatencyEnv::next_event_cycle`] to bound the skip, as the
    /// processors' fast-forward does with the real memory hierarchy).
    pub fn advance_idle(&mut self, k: u64) {
        debug_assert!(
            self.in_flight
                .front()
                .is_none_or(|&(t, _)| t > self.now + k),
            "advance_idle skipped past a completion"
        );
        self.now += k;
    }

    /// Advances time and returns the requests completing this cycle.
    pub fn tick(&mut self) -> Vec<MemReqId> {
        self.now += 1;
        let mut done = Vec::new();
        while let Some(&(t, req)) = self.in_flight.front() {
            if t > self.now {
                break;
            }
            self.in_flight.pop_front();
            done.push(req);
        }
        done
    }
}

impl FabricEnv for FixedLatencyEnv {
    fn issue_mem(&mut self, req: MemReqId, _addr_words: u32, _is_store: bool) -> bool {
        self.mem_accesses += 1;
        self.in_flight.push_back((self.now + self.latency, req));
        true
    }

    fn issue_lv(&mut self, req: MemReqId, _lv: u32, _tid: u32, _is_store: bool) -> bool {
        self.lv_accesses += 1;
        self.in_flight.push_back((self.now + self.latency, req));
        true
    }

    fn mem_read(&mut self, addr_words: u32) -> Word {
        self.mem.read_wrapped(addr_words)
    }

    fn mem_write(&mut self, addr_words: u32, value: Word) {
        self.mem.write_wrapped(addr_words, value);
    }

    fn lv_read(&mut self, lv: u32, tid: u32) -> Word {
        self.lv[(lv * self.num_threads + tid) as usize]
    }

    fn lv_write(&mut self, lv: u32, tid: u32, value: Word) {
        self.lv[(lv * self.num_threads + tid) as usize] = value;
    }
}
