//! Token-level simulation of the multithreaded coarse-grained
//! reconfigurable fabric (MT-CGRF).
//!
//! The fabric is configured with one basic block's dataflow graph (possibly
//! replicated) and then streams threads through it:
//!
//! * each unit owns a token buffer indexed by *virtual execution channel*;
//!   a thread occupies one channel of every unit in its replica while in
//!   flight (§3.5);
//! * a buffer entry fires when all its operand tokens have arrived
//!   (dynamic dataflow firing rule); each unit fires at most one entry per
//!   cycle;
//! * edge latency is the interconnect hop count between the placed units;
//! * LDST/LVU units issue to the memory system through bounded reservation
//!   buffers, letting threads complete out of order and overtake stalled
//!   ones;
//! * SCUs serialize on a pool of non-pipelined instances;
//! * initiator CVUs inject one thread per cycle; terminator CVUs resolve
//!   each thread's next block and retire it toward the scheduler.
//!
//! Every node fires exactly once per thread (the compiler guarantees this
//! by construction), which gives an exact completion condition: a channel
//! is recycled when all nodes fired for its thread and no memory response
//! is outstanding.

use crate::config::FabricConfig;
use crate::stats::FabricStats;
use std::collections::HashMap;
use std::collections::VecDeque;
use vgiw_compiler::{Dfg, DfgOp, GridSpec, NodeId, Placement, UnitKind, ValSrc};
use vgiw_ir::{eval_fma, eval_select, BlockId, OpClass, Word};

/// Request identifier used between the fabric and its memory environment.
pub type MemReqId = u64;

/// The fabric's window to the memory system and functional state.
///
/// Functional data moves at *issue* time (kernels are data-parallel, so no
/// cross-thread ordering is needed); the request/response pair models
/// timing only. The environment must later hand each accepted request ID
/// back to [`Fabric::on_mem_response`].
pub trait FabricEnv {
    /// Issues a global-memory access for the 32-bit word at `addr_words`.
    /// Returns `false` if the cache cannot accept it this cycle.
    fn issue_mem(&mut self, req: MemReqId, addr_words: u32, is_store: bool) -> bool;
    /// Issues a live-value access for `(lv, tid)`.
    /// Returns `false` if the LVC cannot accept it this cycle.
    fn issue_lv(&mut self, req: MemReqId, lv: u32, tid: u32, is_store: bool) -> bool;
    /// Functional global-memory read (total: out-of-range reads zero).
    fn mem_read(&mut self, addr_words: u32) -> Word;
    /// Functional global-memory write (total: out-of-range writes drop).
    fn mem_write(&mut self, addr_words: u32, value: Word);
    /// Functional live-value read.
    fn lv_read(&mut self, lv: u32, tid: u32) -> Word;
    /// Functional live-value write.
    fn lv_write(&mut self, lv: u32, tid: u32, value: Word);
}

/// A thread retired by a terminator CVU.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Retired {
    /// Which replica's terminator produced it (for batch accounting).
    pub replica: u32,
    /// The thread ID.
    pub tid: u32,
    /// The next block the thread must execute, or `None` on kernel exit.
    pub target: Option<BlockId>,
}

const WHEEL: usize = 128;

#[derive(Clone, Copy, Debug)]
struct Delivery {
    replica: u32,
    node: u32,
    port: u8,
    channel: u32,
    value: Word,
}

#[derive(Clone, Copy, Debug)]
struct PendingMem {
    replica: u32,
    node: u32,
    channel: u32,
    /// Loaded value (for loads / LV loads); ignored for stores.
    value: Word,
}

#[derive(Clone, Debug)]
struct NodeRt {
    op: DfgOp,
    kind: UnitKind,
    latency: u32,
    /// Semantic port count.
    n_sem: u8,
    /// Static values for semantic ports (resolved params/immediates).
    static_vals: [Option<Word>; 3],
    /// Resolved static address addend for Load/Store nodes (base+offset
    /// addressing held in the unit's configuration registers).
    addr_offset: u32,
    /// Bitmask of token ports that must arrive before firing.
    needed_mask: u8,
}

#[derive(Clone, Copy, Default)]
struct BufEntry {
    arrived: u8,
    vals: [Word; 4],
}

#[derive(Clone, Copy)]
struct ChannelState {
    tid: u32,
    remaining_fires: u32,
    pending_mem: u32,
}

struct Replica {
    /// Token buffers: `buf[node][channel]`.
    buf: Vec<Vec<BufEntry>>,
    channels: Vec<Option<ChannelState>>,
    free_channels: Vec<u32>,
    /// Ready channels per node.
    ready: Vec<VecDeque<u32>>,
    /// SCU instance busy-until times (empty for non-SCU nodes).
    scu_busy: Vec<Vec<u64>>,
    /// Outstanding memory ops per node (LDST/LVU reservation occupancy).
    reservation: Vec<u32>,
    /// Per-node consumer table: `(consumer, port, edge latency)`.
    edges: Vec<Vec<(u32, u8, u32)>>,
}

/// The MT-CGRF fabric simulator. See the module-level documentation.
pub struct Fabric {
    grid: GridSpec,
    cfg: FabricConfig,
    nodes: Vec<NodeRt>,
    init: u32,
    replicas: Vec<Replica>,
    wheel: Vec<Vec<Delivery>>,
    wheel_count: usize,
    cycle: u64,
    inject_queue: VecDeque<u32>,
    /// Nodes with nonempty ready queues: `(replica, node)`; deduplicated
    /// with `in_active`.
    active: VecDeque<(u32, u32)>,
    in_active: Vec<Vec<bool>>,
    pending_mem: HashMap<MemReqId, PendingMem>,
    next_req: MemReqId,
    retired: Vec<Retired>,
    active_channels: u32,
    stats: FabricStats,
}

impl Fabric {
    /// Creates an unconfigured fabric over `grid`.
    pub fn new(grid: GridSpec, cfg: FabricConfig) -> Fabric {
        Fabric {
            grid,
            cfg,
            nodes: Vec::new(),
            init: 0,
            replicas: Vec::new(),
            wheel: vec![Vec::new(); WHEEL],
            wheel_count: 0,
            cycle: 0,
            inject_queue: VecDeque::new(),
            active: VecDeque::new(),
            in_active: Vec::new(),
            pending_mem: HashMap::new(),
            next_req: 0,
            retired: Vec::new(),
            active_channels: 0,
            stats: FabricStats::default(),
        }
    }

    /// The physical grid this fabric models.
    pub fn grid(&self) -> &GridSpec {
        &self.grid
    }

    /// The fabric sizing/timing configuration.
    pub fn config(&self) -> &FabricConfig {
        &self.cfg
    }

    /// Accumulated statistics (across configurations, until reset).
    pub fn stats(&self) -> &FabricStats {
        &self.stats
    }

    /// Clears statistics.
    pub fn reset_stats(&mut self) {
        self.stats = FabricStats::default();
    }

    /// Current fabric cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Number of replicas currently configured.
    pub fn num_replicas(&self) -> u32 {
        self.replicas.len() as u32
    }

    /// Configures the fabric with `dfg`, one copy per placement in
    /// `placements`. `params` resolves `ValSrc::Param` static operands.
    ///
    /// # Panics
    /// Panics if the fabric still has threads in flight, if a placement
    /// does not match the DFG, or if a parameter index is out of range.
    pub fn configure(&mut self, dfg: &Dfg, placements: &[Placement], params: &[Word]) {
        assert!(self.is_drained(), "reconfiguring a fabric with threads in flight");
        assert!(!placements.is_empty(), "need at least one replica");
        let lat = self.cfg.latencies;

        self.nodes.clear();
        self.init = dfg.init.0;
        let consumers = dfg.consumers();

        for node in &dfg.nodes {
            let kind = node.op.unit_kind();
            let latency = match node.op {
                DfgOp::Unary(op) => class_latency(op.class(), &lat),
                DfgOp::Binary(op) => class_latency(op.class(), &lat),
                DfgOp::Select => lat.int_alu,
                DfgOp::Fma => lat.fp_alu,
                DfgOp::Load | DfgOp::Store => 1, // plus memory time
                DfgOp::LvLoad(_) | DfgOp::LvStore(_) => 1,
                DfgOp::Init | DfgOp::Term(_) => lat.cvu,
                DfgOp::Join | DfgOp::JoinPass | DfgOp::Split => lat.split_join,
            };
            let mut static_vals = [None; 3];
            let mut needed_mask = 0u8;
            for (p, src) in node.inputs.iter().enumerate() {
                match *src {
                    ValSrc::Node(_) => needed_mask |= 1 << p,
                    ValSrc::Imm(w) => static_vals[p] = Some(w),
                    ValSrc::Param(idx) => {
                        let w = *params
                            .get(idx as usize)
                            .unwrap_or_else(|| panic!("missing launch parameter {idx}"));
                        static_vals[p] = Some(w);
                    }
                }
            }
            if node.trigger.is_some() {
                needed_mask |= 1 << node.trigger_port();
            }
            let mut addr_offset = 0u32;
            for off in &node.offsets {
                let v = match *off {
                    ValSrc::Imm(w) => w.as_u32(),
                    ValSrc::Param(idx) => params
                        .get(idx as usize)
                        .unwrap_or_else(|| panic!("missing launch parameter {idx}"))
                        .as_u32(),
                    ValSrc::Node(_) => unreachable!("offsets are static by construction"),
                };
                addr_offset = addr_offset.wrapping_add(v);
            }
            self.nodes.push(NodeRt {
                op: node.op,
                kind,
                latency,
                n_sem: node.inputs.len() as u8,
                static_vals,
                addr_offset,
                needed_mask,
            });
        }

        let n = dfg.nodes.len();
        let ch = self.cfg.channels_per_unit as usize;
        self.replicas = placements
            .iter()
            .map(|p| {
                assert_eq!(p.node_unit.len(), n, "placement/DFG mismatch");
                let edges: Vec<Vec<(u32, u8, u32)>> = consumers
                    .iter()
                    .enumerate()
                    .map(|(i, cons)| {
                        cons.iter()
                            .map(|&(c, port)| {
                                let hops = p.edge_latency(&self.grid, NodeId(i as u32), c);
                                (c.0, port, hops)
                            })
                            .collect()
                    })
                    .collect();
                Replica {
                    buf: vec![vec![BufEntry::default(); ch]; n],
                    channels: vec![None; ch],
                    free_channels: (0..ch as u32).rev().collect(),
                    ready: vec![VecDeque::new(); n],
                    scu_busy: dfg
                        .nodes
                        .iter()
                        .map(|nd| {
                            if nd.op.unit_kind() == UnitKind::Scu {
                                vec![0u64; self.cfg.scu_instances as usize]
                            } else {
                                Vec::new()
                            }
                        })
                        .collect(),
                    reservation: vec![0; n],
                    edges,
                }
            })
            .collect();
        self.in_active = vec![vec![false; n]; placements.len()];
        self.active.clear();
    }

    /// Queues a thread for injection (the BBS streaming thread batches).
    pub fn inject(&mut self, tid: u32) {
        self.inject_queue.push_back(tid);
    }

    /// Threads waiting to enter the fabric.
    pub fn pending_injections(&self) -> usize {
        self.inject_queue.len()
    }

    /// Whether the fabric could accept more injected threads without the
    /// queue growing (a free channel exists on some replica).
    pub fn has_free_channel(&self) -> bool {
        self.replicas.iter().any(|r| !r.free_channels.is_empty())
    }

    /// Threads retired since the last drain.
    pub fn drain_retired(&mut self) -> Vec<Retired> {
        std::mem::take(&mut self.retired)
    }

    /// True when no thread is in flight and nothing is queued.
    pub fn is_drained(&self) -> bool {
        self.active_channels == 0
            && self.inject_queue.is_empty()
            && self.wheel_count == 0
            && self.pending_mem.is_empty()
    }

    /// Completes a memory request previously accepted by the environment.
    pub fn on_mem_response(&mut self, req: MemReqId) {
        let Some(p) = self.pending_mem.remove(&req) else {
            panic!("response for unknown memory request {req}");
        };
        let node = &self.nodes[p.node as usize];
        let is_load = matches!(node.op, DfgOp::Load | DfgOp::LvLoad(_));
        let unit_latency = node.latency;
        if is_load {
            // The unit's own pipeline stage applies on top of the memory
            // response, matching the store paths.
            self.deliver_outputs(p.replica, p.node, p.channel, p.value, unit_latency);
        }
        // Stores delivered their ordering token at issue time (once the
        // banked cache accepts an access, per-address ordering is
        // maintained by in-order bank service); the response only frees
        // the reservation entry and completes the sink.
        self.release_reservation(p.replica, p.node);
        let ch = self.replicas[p.replica as usize].channels[p.channel as usize]
            .as_mut()
            .expect("response for a freed channel");
        ch.pending_mem -= 1;
        self.maybe_free_channel(p.replica, p.channel);
    }

    /// Advances one cycle: lands due tokens, injects threads, fires ready
    /// entries.
    pub fn tick(&mut self, env: &mut dyn FabricEnv) {
        self.cycle += 1;
        self.stats.busy_cycles += 1;

        // 1. Land deliveries due this cycle.
        let slot = (self.cycle % WHEEL as u64) as usize;
        let due = std::mem::take(&mut self.wheel[slot]);
        self.wheel_count -= due.len();
        for d in due {
            self.land(d);
        }

        // 2. Inject up to one thread per replica.
        for r in 0..self.replicas.len() {
            if self.inject_queue.is_empty() {
                break;
            }
            let Some(&channel) = self.replicas[r].free_channels.last() else { continue };
            let tid = self.inject_queue.pop_front().expect("checked non-empty");
            self.replicas[r].free_channels.pop();
            self.replicas[r].channels[channel as usize] = Some(ChannelState {
                tid,
                remaining_fires: self.nodes.len() as u32,
                pending_mem: 0,
            });
            self.active_channels += 1;
            self.stats.threads_injected += 1;
            // The initiator fires immediately: its output token carries the
            // thread ID.
            self.count_fire(self.init as usize, r as u32, channel);
            let lat = self.nodes[self.init as usize].latency;
            self.deliver_outputs(r as u32, self.init, channel, Word::from_u32(tid), lat);
        }

        // 3. Fire ready entries: one per (replica, node) per cycle.
        let n_active = self.active.len();
        for _ in 0..n_active {
            let Some((r, node)) = self.active.pop_front() else { break };
            self.in_active[r as usize][node as usize] = false;
            self.try_fire(r, node, env);
            if !self.replicas[r as usize].ready[node as usize].is_empty()
                && !self.in_active[r as usize][node as usize]
            {
                self.in_active[r as usize][node as usize] = true;
                self.active.push_back((r, node));
            }
        }
    }

    // ---- internals ------------------------------------------------------

    fn land(&mut self, d: Delivery) {
        self.stats.tokens_delivered += 1;
        let entry = &mut self.replicas[d.replica as usize].buf[d.node as usize][d.channel as usize];
        debug_assert_eq!(
            entry.arrived & (1 << d.port),
            0,
            "duplicate token on node {} port {} channel {}",
            d.node,
            d.port,
            d.channel
        );
        entry.arrived |= 1 << d.port;
        entry.vals[d.port as usize] = d.value;
        let needed = self.nodes[d.node as usize].needed_mask;
        if entry.arrived & needed == needed {
            self.replicas[d.replica as usize].ready[d.node as usize].push_back(d.channel);
            if !self.in_active[d.replica as usize][d.node as usize] {
                self.in_active[d.replica as usize][d.node as usize] = true;
                self.active.push_back((d.replica, d.node));
            }
        }
    }

    fn schedule(&mut self, at: u64, d: Delivery) {
        let dist = at.saturating_sub(self.cycle);
        // A hard error beats silent token reordering: the wheel must cover
        // the largest compute latency + hop distance a configuration can
        // produce (128 cycles is ample for the supported configs).
        assert!(
            dist > 0 && (dist as usize) < WHEEL,
            "delivery distance {dist} exceeds the timing wheel; reduce \
             latencies or enlarge WHEEL"
        );
        let slot = (at % WHEEL as u64) as usize;
        self.wheel[slot].push(d);
        self.wheel_count += 1;
    }

    /// Sends `value` from `node` to all its consumers, `extra` cycles after
    /// now (compute latency), plus per-edge hop latency.
    fn deliver_outputs(&mut self, replica: u32, node: u32, channel: u32, value: Word, extra: u32) {
        let edges = std::mem::take(&mut self.replicas[replica as usize].edges[node as usize]);
        for &(consumer, port, hops) in &edges {
            self.stats.hop_traversals += hops as u64;
            let at = self.cycle + extra as u64 + hops as u64;
            self.schedule(at, Delivery { replica, node: consumer, port, channel, value });
        }
        self.replicas[replica as usize].edges[node as usize] = edges;
    }

    fn count_fire(&mut self, node: usize, replica: u32, channel: u32) {
        self.stats.firings += 1;
        match self.nodes[node].kind {
            UnitKind::Alu => match self.nodes[node].op {
                DfgOp::Binary(op) if op.class() == OpClass::FpAlu => self.stats.fp_ops += 1,
                DfgOp::Unary(op) if op.class() == OpClass::FpAlu => self.stats.fp_ops += 1,
                DfgOp::Fma => self.stats.fp_ops += 1,
                _ => self.stats.int_alu_ops += 1,
            },
            UnitKind::Scu => self.stats.special_ops += 1,
            UnitKind::SplitJoin => self.stats.split_join_ops += 1,
            _ => {}
        }
        let ch = self.replicas[replica as usize].channels[channel as usize]
            .as_mut()
            .expect("firing on a freed channel");
        ch.remaining_fires -= 1;
    }

    fn maybe_free_channel(&mut self, replica: u32, channel: u32) {
        let rep = &mut self.replicas[replica as usize];
        let Some(ch) = rep.channels[channel as usize] else { return };
        if ch.remaining_fires == 0 && ch.pending_mem == 0 {
            rep.channels[channel as usize] = None;
            rep.free_channels.push(channel);
            self.active_channels -= 1;
        }
    }

    /// Resolves the value of semantic port `p` for a firing.
    fn port_val(&self, node: usize, entry: &BufEntry, p: usize) -> Word {
        match self.nodes[node].static_vals[p] {
            Some(w) => w,
            None => entry.vals[p],
        }
    }

    fn try_fire(&mut self, replica: u32, node: u32, env: &mut dyn FabricEnv) {
        let r = replica as usize;
        let n = node as usize;
        let Some(&channel) = self.replicas[r].ready[n].front() else { return };
        let entry = self.replicas[r].buf[n][channel as usize];
        let op = self.nodes[n].op;
        let n_sem = self.nodes[n].n_sem as usize;
        let latency = self.nodes[n].latency;
        let tid = self.replicas[r].channels[channel as usize]
            .expect("ready entry on freed channel")
            .tid;

        // Memory-facing nodes may have to retry. A predicated-off store
        // issues no memory operation, so it must not block on a full
        // reservation buffer.
        let suppressed_store = matches!(op, DfgOp::Store)
            && n_sem == 3
            && !entry.vals[2].as_bool()
            && self.nodes[n].static_vals[2].is_none();
        match op {
            DfgOp::Load | DfgOp::Store | DfgOp::LvLoad(_) | DfgOp::LvStore(_)
                if !suppressed_store =>
            {
                if self.replicas[r].reservation[n] >= self.cfg.reservation_entries {
                    self.stats.mem_retry_cycles += 1;
                    return;
                }
            }
            DfgOp::Unary(u) if u.class() == OpClass::Special => {
                if !self.scu_instance_free(r, n) {
                    return;
                }
            }
            DfgOp::Binary(b) if b.class() == OpClass::Special => {
                if !self.scu_instance_free(r, n) {
                    return;
                }
            }
            _ => {}
        }

        match op {
            DfgOp::Init => unreachable!("initiators fire via injection"),
            DfgOp::Unary(u) => {
                let v = u.eval(self.port_val(n, &entry, 0));
                self.finish_fire(r, n, channel);
                if u.class() == OpClass::Special {
                    self.occupy_scu(r, n, latency);
                }
                self.deliver_outputs(replica, node, channel, v, latency);
            }
            DfgOp::Binary(b) => {
                let v = b.eval(self.port_val(n, &entry, 0), self.port_val(n, &entry, 1));
                self.finish_fire(r, n, channel);
                if b.class() == OpClass::Special {
                    self.occupy_scu(r, n, latency);
                }
                self.deliver_outputs(replica, node, channel, v, latency);
            }
            DfgOp::Select => {
                let v = eval_select(
                    self.port_val(n, &entry, 0),
                    self.port_val(n, &entry, 1),
                    self.port_val(n, &entry, 2),
                );
                self.finish_fire(r, n, channel);
                self.deliver_outputs(replica, node, channel, v, latency);
            }
            DfgOp::Fma => {
                let v = eval_fma(
                    self.port_val(n, &entry, 0),
                    self.port_val(n, &entry, 1),
                    self.port_val(n, &entry, 2),
                );
                self.finish_fire(r, n, channel);
                self.deliver_outputs(replica, node, channel, v, latency);
            }
            DfgOp::Join => {
                self.finish_fire(r, n, channel);
                self.deliver_outputs(replica, node, channel, Word::ONE, latency);
            }
            DfgOp::JoinPass | DfgOp::Split => {
                let v = self.port_val(n, &entry, 0);
                self.finish_fire(r, n, channel);
                self.deliver_outputs(replica, node, channel, v, latency);
            }
            DfgOp::Load => {
                let addr = self
                    .port_val(n, &entry, 0)
                    .as_u32()
                    .wrapping_add(self.nodes[n].addr_offset);
                let req = self.next_req;
                if !env.issue_mem(req, addr, false) {
                    self.stats.mem_retry_cycles += 1;
                    return;
                }
                self.next_req += 1;
                let value = env.mem_read(addr);
                self.begin_mem(r, n, channel, req, value);
                self.finish_fire(r, n, channel);
                self.stats.mem_loads += 1;
            }
            DfgOp::Store => {
                let gate_ok = if n_sem == 3 {
                    self.port_val(n, &entry, 2).as_bool()
                } else {
                    true
                };
                if gate_ok {
                    let addr = self
                        .port_val(n, &entry, 0)
                        .as_u32()
                        .wrapping_add(self.nodes[n].addr_offset);
                    let value = self.port_val(n, &entry, 1);
                    let req = self.next_req;
                    if !env.issue_mem(req, addr, true) {
                        self.stats.mem_retry_cycles += 1;
                        return;
                    }
                    self.next_req += 1;
                    env.mem_write(addr, value);
                    self.begin_mem(r, n, channel, req, Word::ZERO);
                    self.finish_fire(r, n, channel);
                    self.stats.mem_stores += 1;
                    // Ordering token released at issue (see on_mem_response).
                    self.deliver_outputs(replica, node, channel, Word::ONE, latency);
                } else {
                    // Predicated-off store: fires (occupying the unit) but
                    // suppresses the write; ordering consumers still get
                    // their token.
                    self.finish_fire(r, n, channel);
                    self.stats.suppressed_stores += 1;
                    self.deliver_outputs(replica, node, channel, Word::ONE, latency);
                }
            }
            DfgOp::LvLoad(lv) => {
                let req = self.next_req;
                if !env.issue_lv(req, lv.0, tid, false) {
                    self.stats.mem_retry_cycles += 1;
                    return;
                }
                self.next_req += 1;
                let value = env.lv_read(lv.0, tid);
                self.begin_mem(r, n, channel, req, value);
                self.finish_fire(r, n, channel);
                self.stats.lv_loads += 1;
            }
            DfgOp::LvStore(lv) => {
                let value = self.port_val(n, &entry, 0);
                let req = self.next_req;
                if !env.issue_lv(req, lv.0, tid, true) {
                    self.stats.mem_retry_cycles += 1;
                    return;
                }
                self.next_req += 1;
                env.lv_write(lv.0, tid, value);
                self.begin_mem(r, n, channel, req, Word::ZERO);
                self.finish_fire(r, n, channel);
                self.stats.lv_stores += 1;
                // Ordering token released at issue (see on_mem_response).
                self.deliver_outputs(replica, node, channel, Word::ONE, latency);
            }
            DfgOp::Term(targets) => {
                let target = match (targets.taken, targets.not_taken) {
                    (Some(t), Some(f)) => {
                        if self.port_val(n, &entry, 0).as_bool() {
                            Some(t)
                        } else {
                            Some(f)
                        }
                    }
                    (Some(t), None) => Some(t),
                    _ => None,
                };
                self.finish_fire(r, n, channel);
                self.stats.threads_retired += 1;
                self.retired.push(Retired { replica, tid, target });
            }
        }
    }

    /// Pops the fired channel from the ready queue, clears its buffer entry
    /// and accounts the firing.
    fn finish_fire(&mut self, r: usize, n: usize, channel: u32) {
        let popped = self.replicas[r].ready[n].pop_front();
        debug_assert_eq!(popped, Some(channel));
        self.replicas[r].buf[n][channel as usize] = BufEntry::default();
        self.count_fire(n, r as u32, channel);
        // A channel whose last fire just happened (and has no outstanding
        // memory) can be recycled; memory ops call begin_mem before this,
        // and compute outputs, if any, imply unfired consumers.
        self.maybe_free_channel(r as u32, channel);
    }

    fn begin_mem(&mut self, r: usize, n: usize, channel: u32, req: MemReqId, value: Word) {
        self.replicas[r].reservation[n] += 1;
        self.replicas[r].channels[channel as usize]
            .as_mut()
            .expect("mem op on freed channel")
            .pending_mem += 1;
        self.pending_mem.insert(
            req,
            PendingMem { replica: r as u32, node: n as u32, channel, value },
        );
    }

    fn scu_instance_free(&self, r: usize, n: usize) -> bool {
        self.replicas[r].scu_busy[n].iter().any(|&b| b <= self.cycle)
    }

    fn occupy_scu(&mut self, r: usize, n: usize, latency: u32) {
        let now = self.cycle;
        let slot = self.replicas[r].scu_busy[n]
            .iter_mut()
            .find(|b| **b <= now)
            .expect("caller checked scu_instance_free");
        *slot = now + latency as u64;
    }
}

impl std::fmt::Debug for Fabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Fabric {{ {} nodes x {} replicas, cycle {}, {} active channels }}",
            self.nodes.len(),
            self.replicas.len(),
            self.cycle,
            self.active_channels
        )
    }
}

impl Fabric {
    /// Releases reservation-buffer occupancy when a response arrives.
    fn release_reservation(&mut self, replica: u32, node: u32) {
        let slot = &mut self.replicas[replica as usize].reservation[node as usize];
        debug_assert!(*slot > 0);
        *slot -= 1;
    }
}

fn class_latency(class: OpClass, lat: &crate::config::OpLatencies) -> u32 {
    match class {
        OpClass::IntAlu => lat.int_alu,
        OpClass::FpAlu => lat.fp_alu,
        OpClass::Special => lat.special,
    }
}
