//! Token-level simulation of the multithreaded coarse-grained
//! reconfigurable fabric (MT-CGRF).
//!
//! The fabric is configured with one basic block's dataflow graph (possibly
//! replicated) and then streams threads through it:
//!
//! * each unit owns a token buffer indexed by *virtual execution channel*;
//!   a thread occupies one channel of every unit in its replica while in
//!   flight (§3.5);
//! * a buffer entry fires when all its operand tokens have arrived
//!   (dynamic dataflow firing rule); each unit fires at most one entry per
//!   cycle;
//! * edge latency is the interconnect hop count between the placed units;
//! * LDST/LVU units issue to the memory system through bounded reservation
//!   buffers, letting threads complete out of order and overtake stalled
//!   ones;
//! * SCUs serialize on a pool of non-pipelined instances;
//! * initiator CVUs inject one thread per cycle; terminator CVUs resolve
//!   each thread's next block and retire it toward the scheduler.
//!
//! Every node fires exactly once per thread (the compiler guarantees this
//! by construction), which gives an exact completion condition: a channel
//! is recycled when all nodes fired for its thread and no memory response
//! is outstanding.
//!
//! # Event-driven token delivery
//!
//! Two tick implementations produce identical cycle counts, statistics and
//! retirement order (regression-tested against each other):
//!
//! * The **reference tick** enqueues one timing-wheel entry per token and
//!   lands tokens into consumer buffers when due — a direct transcription
//!   of the hardware's token pipeline.
//! * The default **event-driven tick** writes each token into the
//!   consumer's buffer entry immediately, tagged with its arrival cycle
//!   and a global write sequence number; only the *completion* of an entry
//!   (its last operand) schedules a wheel event, at the entry's
//!   ready-to-fire cycle. A landing slot is sorted by the sequence number
//!   of each entry's latest-arriving token, which reproduces the reference
//!   tick's ready-queue order exactly (wheel pushes happen in sequence
//!   order, so slot order *is* completion order there).
//!
//! This cuts wheel traffic from one event per token to one per firing and
//! halves the buffer-arena traffic. An occupancy bitmap over the wheel
//! makes the next-event query ([`Fabric::next_wheel_event`]) a couple of
//! word scans instead of a slot walk, which is what lets the driving core
//! jump the clock over idle stretches cheaply.

use crate::config::FabricConfig;
use crate::faults::FabricFaults;
use crate::stats::{FabricStats, TickPhases};
use std::collections::VecDeque;
use std::time::Instant;
use vgiw_compiler::{Dfg, DfgOp, GridSpec, NodeId, Placement, UnitKind, ValSrc};
use vgiw_ir::{eval_fma, eval_select, BinaryOp, BlockId, OpClass, UnaryOp, Word};
use vgiw_robust::{InvariantKind, InvariantViolation, StuckResource};

/// Request identifier used between the fabric and its memory environment.
pub type MemReqId = u64;

/// Why [`Fabric::configure`] rejected a configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// A `ValSrc::Param` operand indexed past the launch parameter list.
    MissingParam {
        /// The out-of-range parameter index.
        index: u32,
    },
    /// A zero-latency op feeds a same-unit consumer; the token pipeline
    /// requires every edge to take at least one cycle.
    ZeroLatencyEdge,
    /// The worst-case delivery distance exceeds the maximum timing wheel.
    WheelOverflow {
        /// The offending worst-case latency + hop distance, in cycles.
        max_dist: u64,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::MissingParam { index } => {
                write!(f, "missing launch parameter {index}")
            }
            ConfigError::ZeroLatencyEdge => write!(
                f,
                "configuration has a zero-latency edge (0-cycle op feeding a \
                 same-unit consumer); every token must take at least one cycle"
            ),
            ConfigError::WheelOverflow { max_dist } => write!(
                f,
                "worst-case delivery distance {max_dist} cycles exceeds the \
                 maximum timing wheel of {MAX_WHEEL}; reduce op latencies or \
                 the grid diameter"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Pending work at one fabric node, for [`FabricSnapshot`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodePending {
    /// Replica index.
    pub replica: u32,
    /// Node (DFG) index.
    pub node: u32,
    /// Buffer entries holding at least one token, not yet fired.
    pub buffered: u32,
    /// Channels ready to fire at this node.
    pub ready: u32,
}

/// A structural snapshot of in-flight fabric state, taken when the
/// driving core's watchdog expires ([`Fabric::snapshot`]).
#[derive(Clone, Debug)]
pub struct FabricSnapshot {
    /// Fabric cycle at snapshot time.
    pub cycle: u64,
    /// Channels occupied by in-flight threads.
    pub active_channels: u32,
    /// Threads queued for injection.
    pub pending_injections: usize,
    /// Scheduled timing-wheel events.
    pub wheel_events: usize,
    /// Outstanding memory requests (issued, no response yet).
    pub pending_mem: usize,
    /// Per-node pending token state (only nodes with work).
    pub nodes: Vec<NodePending>,
}

impl FabricSnapshot {
    /// Renders the snapshot as stuck-resource entries for a
    /// [`vgiw_robust::DeadlockReport`].
    pub fn stuck_resources(&self) -> Vec<StuckResource> {
        let mut out = vec![StuckResource {
            name: "fabric".to_string(),
            detail: format!(
                "{} active channels, {} queued injections, {} wheel events, \
                 {} outstanding memory requests",
                self.active_channels, self.pending_injections, self.wheel_events, self.pending_mem
            ),
        }];
        for n in &self.nodes {
            out.push(StuckResource {
                name: format!("fabric node {} (replica {})", n.node, n.replica),
                detail: format!(
                    "{} buffered token entries, {} ready channels",
                    n.buffered, n.ready
                ),
            });
        }
        out
    }
}

/// The fabric's window to the memory system and functional state.
///
/// Functional data moves at *issue* time (kernels are data-parallel, so no
/// cross-thread ordering is needed); the request/response pair models
/// timing only. The environment must later hand each accepted request ID
/// back to [`Fabric::on_mem_response`].
pub trait FabricEnv {
    /// Issues a global-memory access for the 32-bit word at `addr_words`.
    /// Returns `false` if the cache cannot accept it this cycle.
    fn issue_mem(&mut self, req: MemReqId, addr_words: u32, is_store: bool) -> bool;
    /// Issues a live-value access for `(lv, tid)`.
    /// Returns `false` if the LVC cannot accept it this cycle.
    fn issue_lv(&mut self, req: MemReqId, lv: u32, tid: u32, is_store: bool) -> bool;
    /// Functional global-memory read (total: out-of-range reads zero).
    fn mem_read(&mut self, addr_words: u32) -> Word;
    /// Functional global-memory write (total: out-of-range writes drop).
    fn mem_write(&mut self, addr_words: u32, value: Word);
    /// Functional live-value read.
    fn lv_read(&mut self, lv: u32, tid: u32) -> Word;
    /// Functional live-value write.
    fn lv_write(&mut self, lv: u32, tid: u32, value: Word);
}

/// A thread retired by a terminator CVU.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Retired {
    /// Which replica's terminator produced it (for batch accounting).
    pub replica: u32,
    /// The thread ID.
    pub tid: u32,
    /// The next block the thread must execute, or `None` on kernel exit.
    pub target: Option<BlockId>,
}

/// Minimum timing-wheel length (a power of two). [`Fabric::configure`]
/// grows the wheel to cover the configuration's worst-case delivery
/// distance, so `schedule` never overflows at runtime.
const MIN_WHEEL: usize = 128;
/// Hard cap on the timing wheel. A configuration whose worst-case
/// latency + hop distance exceeds this is rejected at configure time.
const MAX_WHEEL: usize = 1 << 16;

/// A token in flight (reference tick only).
#[derive(Clone, Copy, Debug)]
struct Delivery {
    replica: u32,
    node: u32,
    port: u8,
    channel: u32,
    value: Word,
}

/// A buffer entry whose last operand has been written (event-driven tick):
/// at the event's wheel slot, the entry enters its node's ready queue.
#[derive(Clone, Copy, Debug)]
struct ReadyEvent {
    /// `(replica << 16) | node`.
    target: u32,
    channel: u32,
    /// The entry's completion key (see [`BufEntry::key`]); sorting a
    /// landing slot by it reproduces the reference tick's ready order
    /// (within one slot all keys share the arrival cycle, so the order is
    /// the write sequence of each entry's latest-arriving token).
    key: u64,
}

#[derive(Clone, Copy, Debug)]
struct PendingMem {
    replica: u32,
    node: u32,
    channel: u32,
    /// Loaded value (for loads / LV loads); ignored for stores.
    value: Word,
}

/// Which statistics counter a firing of this node increments.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum StatClass {
    Int,
    Fp,
    Special,
    SplitJoin,
    Other,
}

/// Decoded operation tag of one micro-program node: the per-firing
/// [`DfgOp`] dispatch, folded at configure time. SCU occupancy and store
/// predication are baked into dedicated tags so the fire path never
/// re-derives them from the DFG.
#[derive(Clone, Copy, Debug)]
enum MicroOp {
    /// Initiators fire via injection, never from the ready loop.
    Init,
    Unary(UnaryOp),
    /// A unary special op occupying an SCU instance.
    UnaryScu(UnaryOp),
    Binary(BinaryOp),
    /// A binary special op occupying an SCU instance.
    BinaryScu(BinaryOp),
    Select,
    Fma,
    /// Control join: emits `1` once all inputs arrived.
    Join,
    /// Pass-through (`JoinPass`/`Split`): emits port 0's value.
    Pass,
    Load,
    /// `dyn_gate`: the store carries a dynamic gate token on port 2 and
    /// is suppressed when that token is zero (a static gate never
    /// suppresses; see the [`DfgOp::Store`] port contract).
    Store {
        /// Whether port 2 is a dynamic predication gate.
        dyn_gate: bool,
    },
    LvLoad(u32),
    LvStore(u32),
    /// Terminator with its branch targets packed as block IDs
    /// (`NO_TARGET` = no successor), keeping the tag pointer-free and
    /// small enough for the packed [`NodeMeta`] record.
    Term {
        taken: u32,
        not_taken: u32,
    },
}

/// Sentinel in a [`MicroOp::Term`] target slot: no successor block.
const NO_TARGET: u32 = u32::MAX;

/// One consumer edge of the micro-program, fully resolved for one
/// replica's placement.
#[derive(Clone, Copy, Debug)]
struct MicroEdge {
    /// Consumer node index (scaled by the channel count, also the base of
    /// the consumer's row in the node-major token-buffer arena).
    consumer: u32,
    /// Total delivery distance in cycles: producer pipeline latency +
    /// interconnect hops. Every firing sends its outputs `latency` cycles
    /// after the firing cycle, so the sum is a configure-time constant.
    dist: u32,
    /// Consumer input port.
    port: u8,
}

/// Everything one firing needs to know about its node, packed into one
/// 32-byte record so evaluate + commit touch a single cache line of node
/// metadata. (A fully columnar split was measured slower here: a firing
/// reads *most* of these fields for *one* random node, so one packed
/// line beats one line per column.)
#[derive(Clone, Copy, Debug)]
struct NodeMeta {
    /// Decoded op tag (the per-firing [`DfgOp`] dispatch, folded at
    /// configure time).
    tag: MicroOp,
    /// Unit pipeline latency in cycles.
    latency: u32,
    /// Consumer-edge CSR bounds: this node's edges occupy
    /// `edges[edge_start..edge_end]` of every replica's edge table (the
    /// shape is placement-independent; only each edge's hop distance
    /// varies per replica). Out-degree is `edge_end - edge_start`.
    edge_start: u32,
    edge_end: u32,
    /// Resolved static address addend for Load/Store nodes (base+offset
    /// addressing held in the unit's configuration registers).
    addr_offset: u32,
    /// Bitmask of semantic ports resolved statically.
    static_mask: u8,
    /// Counter bucket for firings (folded out of the fire path's match).
    stat_class: StatClass,
}

// The fire path is sized around one packed half-cache-line record per
// node; a field addition that grows it past 32 bytes should be a
// deliberate decision, not an accident.
const _: () = assert!(std::mem::size_of::<NodeMeta>() == 32);

/// The configure-time lowering of the mapped DFG: per node one packed
/// [`NodeMeta`] record plus side tables, all flat and pointer-free. The
/// fire path indexes these instead of pointer-chasing a node table and
/// re-matching [`DfgOp`] per firing; everything derivable from the
/// configuration (latency, needed ports, static operands, delivery
/// distances) is precomputed here once per reconfiguration.
#[derive(Default)]
struct MicroProgram {
    /// Packed hot per-node records.
    meta: Vec<NodeMeta>,
    /// Needed-port masks as a dense byte column: the delivery and landing
    /// loops read only this one byte per *consumer*, and 64 nodes per
    /// cache line beats pulling each consumer's full record.
    needed: Vec<u8>,
    /// Statically resolved operand values (immediates/params), dense;
    /// read only by nodes whose `static_mask` is non-zero.
    statics: Vec<[Word; 3]>,
}

impl MicroProgram {
    /// Number of nodes in the lowered program.
    fn len(&self) -> usize {
        self.meta.len()
    }

    fn clear(&mut self) {
        self.meta.clear();
        self.needed.clear();
        self.statics.clear();
    }
}

/// One unit of ready work gathered by the batch engine: the front entry
/// of `(replica, node)`'s ready queue. Its index in the gather FIFO is
/// its ordinal; commits replay in ordinal order so every externally
/// visible effect sequence matches the sequential fire loop exactly.
#[derive(Clone, Copy, Debug)]
struct Candidate {
    node: u32,
    replica: u32,
    channel: u32,
}

/// The evaluated outcome of one candidate, produced node-major and
/// committed in FIFO ordinal order.
#[derive(Clone, Copy, Debug)]
enum FireAction {
    /// Reservation buffer full: count a memory retry and keep the entry.
    RetryFull,
    /// All SCU instances busy: keep the entry (no retry statistic,
    /// matching the sequential path).
    RetryScu,
    /// Pure compute result to deliver; `scu` also occupies an SCU
    /// instance.
    Compute { v: Word, scu: bool },
    /// Global load at the resolved address.
    Load { addr: u32 },
    /// Global store (any gate already resolved as executing).
    Store { addr: u32, value: Word },
    /// Predicated-off store: fires without a memory access.
    StoreSuppressed,
    /// Live-value load for `(lv, tid)`.
    LvLoad { lv: u32, tid: u32 },
    /// Live-value store for `(lv, tid)`.
    LvStore { lv: u32, tid: u32, value: Word },
    /// Thread retirement toward the scheduler.
    Term { tid: u32, target: Option<BlockId> },
}

/// Reusable scratch for the node-major batch fire loop; kept across
/// ticks so the steady-state cycle allocates nothing.
///
/// Node-major grouping is built as per-node singly linked lists over the
/// gather FIFO (`head`/`tail`/`next`, ordinals as links) in O(batch) —
/// no comparison sort. Evaluation order across groups is free to differ
/// from FIFO order because evaluation is pure; FIFO order within a group
/// falls out of appending to the tail.
#[derive(Default)]
struct BatchScratch {
    /// Gathered candidates in FIFO (`active`) order; index = ordinal.
    fifo: Vec<Candidate>,
    /// Evaluated actions, indexed by ordinal.
    actions: Vec<FireAction>,
    /// First gathered ordinal per node (`NO_CAND` when none); reset back
    /// to `NO_CAND` as each group is evaluated.
    head: Vec<u32>,
    /// Last gathered ordinal per node (stale unless `head` is live).
    tail: Vec<u32>,
    /// Next ordinal in the same node group (`NO_CAND` ends the chain).
    next: Vec<u32>,
    /// Nodes with a non-empty group this cycle, in first-seen order.
    touched: Vec<u32>,
}

/// Sentinel ordinal terminating a [`BatchScratch`] node chain.
const NO_CAND: u32 = u32::MAX;

/// Minimum average node-group size (active set ÷ node count, a pigeonhole
/// lower bound computed in O(1) before gathering) at which the staged
/// node-major schedule beats the direct fused loop. Below it, staging
/// candidates and actions costs more than once-per-node op decode saves —
/// the kernel suite averages 1.0–2.2 candidates per group and runs
/// entirely on the fused loop.
const COALESCE_MIN_GROUP: usize = 4;

/// One token buffer entry, packed to 32 bytes so two entries share every
/// cache line of the (large, randomly accessed) buffer arena.
///
/// `key` tracks the latest-arriving token for the event-driven tick as
/// `(arrival_cycle << 32) | write_sequence` — one `max` per token write
/// keeps the lexicographic maximum of (arrival, sequence), and the packed
/// comparison is exact because the write sequence resets on every
/// (drained) reconfiguration and is checked against 32 bits. The
/// reference tick leaves it at zero.
#[derive(Clone, Copy, Default)]
struct BufEntry {
    vals: [Word; 4],
    key: u64,
    arrived: u8,
}

impl BufEntry {
    fn is_clear(&self) -> bool {
        self.arrived == 0 && self.key == 0
    }
}

/// Occupancy bitmap over timing-wheel slots: one bit per slot, giving the
/// next-event query a short word scan instead of a walk over slot buffers.
#[derive(Default, Debug)]
struct SlotBitmap {
    words: Vec<u64>,
}

impl SlotBitmap {
    /// Sizes for `slots` (a power of two ≥ 64) and clears all bits.
    fn reset(&mut self, slots: usize) {
        debug_assert!(slots.is_power_of_two() && slots >= 64);
        self.words.clear();
        self.words.resize(slots / 64, 0);
    }

    #[inline]
    fn set(&mut self, slot: usize) {
        self.words[slot >> 6] |= 1 << (slot & 63);
    }

    #[inline]
    fn clear(&mut self, slot: usize) {
        self.words[slot >> 6] &= !(1 << (slot & 63));
    }

    /// First occupied slot at or after `start`, searching cyclically for
    /// one full revolution. `None` if the wheel is empty.
    fn next_from(&self, start: usize) -> Option<usize> {
        let nw = self.words.len();
        let sw = start >> 6;
        let first = self.words[sw] & (!0u64 << (start & 63));
        if first != 0 {
            return Some((sw << 6) + first.trailing_zeros() as usize);
        }
        for i in 1..=nw {
            let w = (sw + i) & (nw - 1);
            if self.words[w] != 0 {
                return Some((w << 6) + self.words[w].trailing_zeros() as usize);
            }
        }
        None
    }
}

struct Replica {
    /// Token buffers, one flat row-major arena: entry for `(node, channel)`
    /// lives at `node * channels_per_unit + channel`. One allocation per
    /// replica instead of one per node.
    buf: Vec<BufEntry>,
    /// Thread ID per occupied channel (structure-of-arrays channel state).
    ch_tid: Vec<u32>,
    /// Per-channel completion word: `(remaining_fires << 32) | pending_mem`.
    /// Zero means the channel is free (or just finished and recyclable).
    ch_work: Vec<u64>,
    free_channels: Vec<u32>,
    /// Ready channels per node.
    ready: Vec<VecDeque<u32>>,
    /// SCU instance busy-until times (empty for non-SCU nodes).
    scu_busy: Vec<Vec<u64>>,
    /// Cached `min(scu_busy[n])` so the fire path checks one word.
    scu_min_free: Vec<u64>,
    /// Outstanding memory ops per node (LDST/LVU reservation occupancy).
    reservation: Vec<u32>,
    /// This replica's consumer-edge table, indexed by the shared
    /// [`MicroProgram::edge_start`] CSR rows.
    edges: Vec<MicroEdge>,
    /// Sum of hop latencies over node `i`'s outgoing edges (statistics are
    /// folded per firing instead of per token).
    hop_sum: Vec<u64>,
}

/// The MT-CGRF fabric simulator. See the module-level documentation.
pub struct Fabric {
    grid: GridSpec,
    cfg: FabricConfig,
    /// The configured DFG, lowered to a flat micro-program.
    prog: MicroProgram,
    init: u32,
    replicas: Vec<Replica>,
    /// Per-token timing wheel (reference tick); length is a power of two
    /// sized by `configure`.
    wheel_tokens: Vec<Vec<Delivery>>,
    /// Per-completion timing wheel (event-driven tick); same length.
    wheel_ready: Vec<Vec<ReadyEvent>>,
    /// Occupancy bitmap over whichever wheel the active mode uses.
    occ: SlotBitmap,
    wheel_mask: u64,
    wheel_count: usize,
    /// Global token write counter (event-driven tick ordering source).
    token_seq: u64,
    /// Use the naive per-token reference tick instead of the event-driven
    /// core (testing knob; both are stats- and cycle-identical).
    reference: bool,
    cycle: u64,
    inject_queue: VecDeque<u32>,
    /// Nodes with nonempty ready queues: `(replica, node)`; deduplicated
    /// with `in_active`.
    active: VecDeque<(u32, u32)>,
    /// Flat dedup bitmap for `active`: `replica * nodes.len() + node`.
    in_active: Vec<bool>,
    /// Outstanding memory requests as a free-list slab: the request ID *is*
    /// the slot index, so issue and response are both O(1) with no hashing
    /// and no per-request allocation. A slot is recycled only after its
    /// response has been consumed, so IDs never collide in flight.
    pending_mem: Vec<Option<PendingMem>>,
    pending_free: Vec<u32>,
    pending_count: usize,
    retired: Vec<Retired>,
    active_channels: u32,
    stats: FabricStats,
    /// Scratch for the node-major batch fire loop (event-driven tick).
    batch: BatchScratch,
    /// Accumulate per-phase tick wall time (off by default: the timer
    /// reads would dominate short phases on measured runs).
    time_phases: bool,
    /// Accumulated per-phase tick wall time (when enabled).
    phases: TickPhases,
    /// Installed fault plan (all `None` in normal operation).
    faults: FabricFaults,
    /// Token deliveries seen since the fault plan was installed.
    fault_tokens: u64,
    /// Retirements seen since the fault plan was installed.
    fault_retires: u64,
}

impl Fabric {
    /// Creates an unconfigured fabric over `grid`.
    pub fn new(grid: GridSpec, cfg: FabricConfig) -> Fabric {
        let mut occ = SlotBitmap::default();
        occ.reset(MIN_WHEEL);
        Fabric {
            grid,
            cfg,
            prog: MicroProgram::default(),
            init: 0,
            replicas: Vec::new(),
            wheel_tokens: vec![Vec::new(); MIN_WHEEL],
            wheel_ready: vec![Vec::new(); MIN_WHEEL],
            occ,
            wheel_mask: MIN_WHEEL as u64 - 1,
            wheel_count: 0,
            token_seq: 0,
            reference: false,
            cycle: 0,
            inject_queue: VecDeque::new(),
            active: VecDeque::new(),
            in_active: Vec::new(),
            pending_mem: Vec::new(),
            pending_free: Vec::new(),
            pending_count: 0,
            retired: Vec::new(),
            active_channels: 0,
            stats: FabricStats::default(),
            batch: BatchScratch::default(),
            time_phases: false,
            phases: TickPhases::default(),
            faults: FabricFaults::default(),
            fault_tokens: 0,
            fault_retires: 0,
        }
    }

    /// Installs a deterministic fault plan (fault-injection tests only)
    /// and resets its event counters. Pass `FabricFaults::default()` to
    /// clear.
    pub fn set_faults(&mut self, faults: FabricFaults) {
        self.faults = faults;
        self.fault_tokens = 0;
        self.fault_retires = 0;
    }

    /// Snapshots in-flight state for a deadlock report: per-node pending
    /// tokens, queued injections, wheel events and outstanding memory.
    pub fn snapshot(&self) -> FabricSnapshot {
        let ch = self.cfg.channels_per_unit as usize;
        let mut nodes = Vec::new();
        for (ri, rep) in self.replicas.iter().enumerate() {
            for n in 0..self.prog.len() {
                let buffered = (0..ch)
                    .filter(|&c| !rep.buf[self.buf_idx(n as u32, c as u32)].is_clear())
                    .count() as u32;
                let ready = rep.ready[n].len() as u32;
                if buffered > 0 || ready > 0 {
                    nodes.push(NodePending {
                        replica: ri as u32,
                        node: n as u32,
                        buffered,
                        ready,
                    });
                }
            }
        }
        FabricSnapshot {
            cycle: self.cycle,
            active_channels: self.active_channels,
            pending_injections: self.inject_queue.len(),
            wheel_events: self.wheel_count,
            pending_mem: self.pending_count,
            nodes,
        }
    }

    /// The physical grid this fabric models.
    pub fn grid(&self) -> &GridSpec {
        &self.grid
    }

    /// The fabric sizing/timing configuration.
    pub fn config(&self) -> &FabricConfig {
        &self.cfg
    }

    /// Accumulated statistics (across configurations, until reset).
    pub fn stats(&self) -> &FabricStats {
        &self.stats
    }

    /// Clears statistics (including any accumulated tick-phase times).
    pub fn reset_stats(&mut self) {
        self.stats = FabricStats::default();
        self.phases = TickPhases::default();
    }

    /// Enables or disables per-phase tick wall-time accumulation. A pure
    /// observer: simulation results are bit-identical either way, but the
    /// timer reads cost real wall time, so measured runs leave it off.
    pub fn set_time_phases(&mut self, on: bool) {
        self.time_phases = on;
    }

    /// Accumulated per-phase tick wall time (zero unless
    /// [`Fabric::set_time_phases`] enabled collection).
    pub fn tick_phases(&self) -> TickPhases {
        self.phases
    }

    /// Current fabric cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Restores the cycle counter from a checkpoint.
    ///
    /// The clock is the *only* fabric state that survives across launches:
    /// everything else (channels, tokens, micro-program runtime state,
    /// replica placements) is rebuilt by [`Fabric::configure`] and the
    /// per-launch injection, and per-run statistics are reset by the
    /// machines. Checkpoints are therefore taken at launch boundaries,
    /// where the fabric is drained, and restore only needs to reposition
    /// the clock.
    ///
    /// # Panics
    /// Panics if the fabric is not drained — restoring mid-launch state
    /// this way would silently discard in-flight tokens.
    pub fn restore_cycle(&mut self, cycle: u64) {
        assert!(
            self.is_drained(),
            "fabric cycle can only be restored while drained (launch boundary)"
        );
        self.cycle = cycle;
    }

    /// Number of replicas currently configured.
    pub fn num_replicas(&self) -> u32 {
        self.replicas.len() as u32
    }

    /// Selects the naive per-token reference tick (`true`) or the default
    /// event-driven tick (`false`). Both produce identical cycle counts,
    /// statistics and retirement order; the reference tick exists as the
    /// equivalence oracle for tests.
    ///
    /// # Panics
    /// Panics if the fabric has threads or tokens in flight.
    pub fn set_reference_tick(&mut self, on: bool) {
        assert!(self.is_drained(), "switching tick mode with work in flight");
        self.reference = on;
    }

    /// Whether the naive reference tick is active.
    pub fn reference_tick(&self) -> bool {
        self.reference
    }

    /// Configures the fabric with `dfg`, one copy per placement in
    /// `placements`. `params` resolves `ValSrc::Param` static operands.
    ///
    /// Validates the configuration's timing envelope: the timing wheel is
    /// resized to cover the worst-case compute latency + hop distance, and
    /// a configuration that cannot be covered (or that contains a
    /// zero-latency edge, which the token pipeline cannot represent) is
    /// rejected with a typed [`ConfigError`] instead of tripping a runtime
    /// assertion mid-simulation. A `ValSrc::Param` operand indexing past
    /// `params` is likewise a [`ConfigError::MissingParam`], not a panic.
    ///
    /// # Panics
    /// Panics if the fabric still has threads in flight or if a placement
    /// does not match the DFG (both are driver bugs, not input errors).
    pub fn configure(
        &mut self,
        dfg: &Dfg,
        placements: &[Placement],
        params: &[Word],
    ) -> Result<(), ConfigError> {
        assert!(
            self.is_drained(),
            "reconfiguring a fabric with threads in flight"
        );
        assert!(!placements.is_empty(), "need at least one replica");
        let lat = self.cfg.latencies;

        self.prog.clear();
        self.init = dfg.init.0;
        let consumers = dfg.consumers();
        let mut edge_cum = 0u32;

        for (i, node) in dfg.nodes.iter().enumerate() {
            let kind = node.op.unit_kind();
            let is_scu = kind == UnitKind::Scu;
            let latency = match node.op {
                DfgOp::Unary(op) => class_latency(op.class(), &lat),
                DfgOp::Binary(op) => class_latency(op.class(), &lat),
                DfgOp::Select => lat.int_alu,
                DfgOp::Fma => lat.fp_alu,
                DfgOp::Load | DfgOp::Store => 1, // plus memory time
                DfgOp::LvLoad(_) | DfgOp::LvStore(_) => 1,
                DfgOp::Init | DfgOp::Term(_) => lat.cvu,
                DfgOp::Join | DfgOp::JoinPass | DfgOp::Split => lat.split_join,
            };
            let stat_class = match kind {
                UnitKind::Alu => match node.op {
                    DfgOp::Binary(op) if op.class() == OpClass::FpAlu => StatClass::Fp,
                    DfgOp::Unary(op) if op.class() == OpClass::FpAlu => StatClass::Fp,
                    DfgOp::Fma => StatClass::Fp,
                    _ => StatClass::Int,
                },
                UnitKind::Scu => StatClass::Special,
                UnitKind::SplitJoin => StatClass::SplitJoin,
                _ => StatClass::Other,
            };
            let mut statics = [Word::ZERO; 3];
            let mut static_mask = 0u8;
            let mut needed_mask = 0u8;
            for (p, src) in node.inputs.iter().enumerate() {
                match *src {
                    ValSrc::Node(_) => needed_mask |= 1 << p,
                    ValSrc::Imm(w) => {
                        statics[p] = w;
                        static_mask |= 1 << p;
                    }
                    ValSrc::Param(idx) => {
                        statics[p] = *params
                            .get(idx as usize)
                            .ok_or(ConfigError::MissingParam { index: idx.into() })?;
                        static_mask |= 1 << p;
                    }
                }
            }
            if node.trigger.is_some() {
                needed_mask |= 1 << node.trigger_port();
            }
            let mut addr_offset = 0u32;
            for off in &node.offsets {
                let v = match *off {
                    ValSrc::Imm(w) => w.as_u32(),
                    ValSrc::Param(idx) => params
                        .get(idx as usize)
                        .ok_or(ConfigError::MissingParam { index: idx.into() })?
                        .as_u32(),
                    ValSrc::Node(_) => unreachable!("offsets are static by construction"),
                };
                addr_offset = addr_offset.wrapping_add(v);
            }
            let tag = match node.op {
                DfgOp::Init => MicroOp::Init,
                DfgOp::Unary(u) if is_scu => MicroOp::UnaryScu(u),
                DfgOp::Unary(u) => MicroOp::Unary(u),
                DfgOp::Binary(b) if is_scu => MicroOp::BinaryScu(b),
                DfgOp::Binary(b) => MicroOp::Binary(b),
                DfgOp::Select => MicroOp::Select,
                DfgOp::Fma => MicroOp::Fma,
                DfgOp::Join => MicroOp::Join,
                DfgOp::JoinPass | DfgOp::Split => MicroOp::Pass,
                DfgOp::Load => MicroOp::Load,
                // A gate port is dynamic (able to suppress the store) only
                // when it is fed by a token, not a static value.
                DfgOp::Store => MicroOp::Store {
                    dyn_gate: node.inputs.len() == 3 && static_mask & 0b100 == 0,
                },
                DfgOp::LvLoad(lv) => MicroOp::LvLoad(lv.0),
                DfgOp::LvStore(lv) => MicroOp::LvStore(lv.0),
                DfgOp::Term(t) => MicroOp::Term {
                    taken: t.taken.map_or(NO_TARGET, |b| b.0),
                    not_taken: t.not_taken.map_or(NO_TARGET, |b| b.0),
                },
            };
            let edge_start = edge_cum;
            edge_cum += consumers[i].len() as u32;
            self.prog.meta.push(NodeMeta {
                tag,
                latency,
                edge_start,
                edge_end: edge_cum,
                addr_offset,
                static_mask,
                stat_class,
            });
            self.prog.needed.push(needed_mask);
            self.prog.statics.push(statics);
        }

        let n = dfg.nodes.len();
        assert!(
            n < (1 << 16) && placements.len() < (1 << 16),
            "node/replica counts must fit the 16-bit event key"
        );
        let ch = self.cfg.channels_per_unit as usize;
        // Reconfiguration happens once per block execution — squarely on
        // the hot path for control-heavy kernels — so replica storage is
        // reset in place rather than reallocated. A drained fabric leaves
        // every token buffer entry cleared (each fire resets its entry),
        // every channel freed, every ready queue empty and every
        // reservation at zero, so most resets are resizes over
        // already-clean memory.
        self.replicas.truncate(placements.len());
        while self.replicas.len() < placements.len() {
            self.replicas.push(Replica {
                buf: Vec::new(),
                ch_tid: Vec::new(),
                ch_work: Vec::new(),
                free_channels: Vec::new(),
                ready: Vec::new(),
                scu_busy: Vec::new(),
                scu_min_free: Vec::new(),
                reservation: Vec::new(),
                edges: Vec::new(),
                hop_sum: Vec::new(),
            });
        }
        // Worst-case delivery distance (compute latency + interconnect
        // hops) across every edge of every placement, used to size the
        // timing wheel below; a zero-distance edge cannot be represented
        // by the token pipeline and rejects the configuration.
        let mut max_dist: u64 = 0;
        let mut zero_dist = false;
        for (rep, p) in self.replicas.iter_mut().zip(placements) {
            assert_eq!(p.node_unit.len(), n, "placement/DFG mismatch");
            debug_assert!(rep.buf.iter().all(BufEntry::is_clear), "drained buf dirty");
            rep.buf.resize(n * ch, BufEntry::default());
            debug_assert!(rep.ch_work.iter().all(|&w| w == 0));
            rep.ch_tid.clear();
            rep.ch_tid.resize(ch, 0);
            rep.ch_work.clear();
            rep.ch_work.resize(ch, 0);
            rep.free_channels.clear();
            rep.free_channels.extend((0..ch as u32).rev());
            debug_assert!(rep.ready.iter().all(VecDeque::is_empty));
            rep.ready.truncate(n);
            while rep.ready.len() < n {
                rep.ready.push(VecDeque::new());
            }
            rep.scu_busy.clear();
            rep.scu_busy.extend(self.prog.meta.iter().map(|m| {
                if matches!(m.tag, MicroOp::UnaryScu(_) | MicroOp::BinaryScu(_)) {
                    vec![0u64; self.cfg.scu_instances as usize]
                } else {
                    Vec::new()
                }
            }));
            rep.scu_min_free.clear();
            rep.scu_min_free.resize(n, 0);
            debug_assert!(rep.reservation.iter().all(|&r| r == 0));
            rep.reservation.clear();
            rep.reservation.resize(n, 0);
            rep.edges.clear();
            rep.hop_sum.clear();
            for (i, cons) in consumers.iter().enumerate() {
                let latency = self.prog.meta[i].latency;
                let mut hop_sum = 0u64;
                for &(c, port) in cons {
                    let hops = p.edge_latency(&self.grid, NodeId(i as u32), c);
                    let dist = latency + hops;
                    max_dist = max_dist.max(dist as u64);
                    zero_dist |= dist == 0;
                    hop_sum += hops as u64;
                    rep.edges.push(MicroEdge {
                        consumer: c.0,
                        dist,
                        port,
                    });
                }
                rep.hop_sum.push(hop_sum);
            }
            debug_assert_eq!(rep.edges.len() as u32, edge_cum);
        }
        // A delivery distance of zero would land a token in the slot being
        // drained; the pipeline model requires every edge to take ≥ 1 cycle.
        if zero_dist {
            return Err(ConfigError::ZeroLatencyEdge);
        }
        self.size_wheel(max_dist)?;
        debug_assert!(
            self.in_active.iter().all(|&b| !b),
            "active residue after drain"
        );
        self.in_active.clear();
        self.in_active.resize(n * placements.len(), false);
        self.active.clear();
        // The wheel is empty and every buffer entry clear (asserted
        // above), so no in-flight key can compare against a post-reset
        // sequence number.
        self.token_seq = 0;
        Ok(())
    }

    /// Grows the timing wheel (always a power of two, never shrunk — slot
    /// buffers keep their capacity across configurations) so every delivery
    /// distance in `[1, max_dist]` fits, or rejects the configuration.
    fn size_wheel(&mut self, max_dist: u64) -> Result<(), ConfigError> {
        let needed = (max_dist + 1).max(MIN_WHEEL as u64);
        if needed > MAX_WHEEL as u64 {
            return Err(ConfigError::WheelOverflow { max_dist });
        }
        let len = needed.next_power_of_two() as usize;
        if len > self.wheel_tokens.len() {
            debug_assert_eq!(self.wheel_count, 0, "resizing a non-empty wheel");
            self.wheel_tokens.resize_with(len, Vec::new);
            self.wheel_ready.resize_with(len, Vec::new);
        }
        if self.occ.words.len() * 64 != self.wheel_tokens.len() {
            self.occ.reset(self.wheel_tokens.len());
        }
        self.wheel_mask = self.wheel_tokens.len() as u64 - 1;
        Ok(())
    }

    /// Queues a thread for injection (the BBS streaming thread batches).
    pub fn inject(&mut self, tid: u32) {
        self.inject_queue.push_back(tid);
    }

    /// Threads waiting to enter the fabric.
    pub fn pending_injections(&self) -> usize {
        self.inject_queue.len()
    }

    /// Whether the fabric could accept more injected threads without the
    /// queue growing (a free channel exists on some replica).
    pub fn has_free_channel(&self) -> bool {
        self.replicas.iter().any(|r| !r.free_channels.is_empty())
    }

    /// Threads retired since the last drain.
    pub fn drain_retired(&mut self) -> Vec<Retired> {
        std::mem::take(&mut self.retired)
    }

    /// Appends threads retired since the last drain to `out`, recycling the
    /// caller's buffer instead of allocating a fresh `Vec` per cycle.
    pub fn drain_retired_into(&mut self, out: &mut Vec<Retired>) {
        out.append(&mut self.retired);
    }

    /// True when no thread is in flight and nothing is queued.
    pub fn is_drained(&self) -> bool {
        self.active_channels == 0
            && self.inject_queue.is_empty()
            && self.wheel_count == 0
            && self.pending_count == 0
    }

    /// True when ticking the fabric can do no work until an in-flight token
    /// lands or a memory response arrives: no node is ready (or retrying a
    /// stalled memory issue), and no queued thread has a channel to enter.
    /// Idle cycles in this state are safe to fast-forward.
    pub fn is_quiescent(&self) -> bool {
        self.active.is_empty() && (self.inject_queue.is_empty() || !self.has_free_channel())
    }

    /// Absolute cycle at which the earliest scheduled wheel event (a token
    /// landing, or an entry becoming ready) occurs, if any. O(wheel/64)
    /// worst case via the occupancy bitmap.
    pub fn next_wheel_event(&self) -> Option<u64> {
        if self.wheel_count == 0 {
            return None;
        }
        let start = ((self.cycle + 1) & self.wheel_mask) as usize;
        let slot = self.occ.next_from(start)?;
        let dist = (slot.wrapping_sub(start) as u64) & self.wheel_mask;
        Some(self.cycle + 1 + dist)
    }

    /// Jumps the clock forward by `k` idle cycles in one step. The caller
    /// must have established quiescence ([`Fabric::is_quiescent`]) and that
    /// no wheel event lands in the skipped range; statistics stay
    /// cycle-exact because an idle `tick` would only have advanced
    /// `busy_cycles`.
    pub fn advance_idle(&mut self, k: u64) {
        debug_assert!(
            self.is_quiescent(),
            "fast-forwarding a non-quiescent fabric"
        );
        self.cycle += k;
        self.stats.busy_cycles += k;
    }

    /// Completes a batch of memory requests in order, prefetching each
    /// request's delivery targets a few responses ahead (response bursts
    /// write consumer entries scattered across the buffer arena).
    ///
    /// The machines' run loops now stream completions one at a time into
    /// [`Fabric::on_mem_response`] via `vgiw_mem::MemDrain` (zero-copy
    /// delivery, no response queue to batch over); this slice entry point
    /// remains for callers that still hold a drained buffer and for the
    /// lookahead prefetch it offers them.
    ///
    /// # Errors
    /// Propagates the first pairing violation from
    /// [`Fabric::on_mem_response`]; remaining responses are not applied.
    pub fn on_mem_responses(&mut self, reqs: &[MemReqId]) -> Result<(), InvariantViolation> {
        const LOOKAHEAD: usize = 8;
        for (i, &req) in reqs.iter().enumerate() {
            #[cfg(target_arch = "x86_64")]
            if let Some(&ahead) = reqs.get(i + LOOKAHEAD) {
                self.prefetch_response_target(ahead);
            }
            self.on_mem_response(req)?;
        }
        Ok(())
    }

    /// Issues cache prefetches for the consumer entries a pending memory
    /// response will write when delivered.
    #[cfg(target_arch = "x86_64")]
    fn prefetch_response_target(&self, req: MemReqId) {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        if let Some(Some(p)) = self.pending_mem.get(req as usize) {
            let rep = &self.replicas[p.replica as usize];
            let m = &self.prog.meta[p.node as usize];
            let (s, e) = (m.edge_start as usize, m.edge_end as usize);
            let row = p.channel as usize;
            for edge in &rep.edges[s..e] {
                let idx = edge.consumer as usize * self.cfg.channels_per_unit as usize + row;
                // In bounds by construction; prefetch has no other effect.
                unsafe { _mm_prefetch(rep.buf.as_ptr().add(idx).cast::<i8>(), _MM_HINT_T0) };
            }
        }
    }

    /// Completes a memory request previously accepted by the environment.
    ///
    /// # Errors
    /// A response whose request is unknown or already completed is a
    /// memory request/response pairing violation (always checked — the
    /// slab lookup is the completion path anyway).
    pub fn on_mem_response(&mut self, req: MemReqId) -> Result<(), InvariantViolation> {
        let Some(p) = self
            .pending_mem
            .get_mut(req as usize)
            .and_then(Option::take)
        else {
            return Err(InvariantViolation {
                kind: InvariantKind::MemPairing,
                machine: "fabric",
                cycle: self.cycle,
                detail: format!(
                    "response for unknown or already-completed memory request {req} \
                     ({} outstanding)",
                    self.pending_count
                ),
            });
        };
        self.pending_free.push(req as u32);
        self.pending_count -= 1;
        let is_load = matches!(
            self.prog.meta[p.node as usize].tag,
            MicroOp::Load | MicroOp::LvLoad(_)
        );
        if is_load {
            // The unit's own pipeline stage applies on top of the memory
            // response (the precomputed edge distances include it),
            // matching the store paths.
            self.deliver_outputs(p.replica, p.node, p.channel, p.value);
        }
        // Stores delivered their ordering token at issue time (once the
        // banked cache accepts an access, per-address ordering is
        // maintained by in-order bank service); the response only frees
        // the reservation entry and completes the sink.
        self.release_reservation(p.replica, p.node);
        let rep = &mut self.replicas[p.replica as usize];
        debug_assert!(
            rep.ch_work[p.channel as usize] as u32 != 0,
            "memory completion on a channel with no outstanding accesses"
        );
        rep.ch_work[p.channel as usize] -= 1;
        self.maybe_free_channel(p.replica, p.channel);
        Ok(())
    }

    /// Advances one cycle: lands due events, injects threads, fires ready
    /// entries.
    pub fn tick<E: FabricEnv + ?Sized>(&mut self, env: &mut E) {
        self.cycle += 1;
        self.stats.busy_cycles += 1;
        if self.time_phases {
            let t0 = Instant::now();
            self.phase_land();
            let t1 = Instant::now();
            self.phase_inject();
            let t2 = Instant::now();
            self.phase_fire(env);
            let t3 = Instant::now();
            self.phases.land_ns += (t1 - t0).as_nanos() as u64;
            self.phases.inject_ns += (t2 - t1).as_nanos() as u64;
            self.phases.fire_ns += (t3 - t2).as_nanos() as u64;
        } else {
            self.phase_land();
            self.phase_inject();
            self.phase_fire(env);
        }
    }

    /// Phase 1: land events due this cycle. The slot buffer is taken,
    /// drained and handed back so its capacity is reused every wheel
    /// revolution: events always target a *future* slot (distance ≥ 1,
    /// enforced at configure time), so nothing lands in `slot` while it
    /// is detached.
    fn phase_land(&mut self) {
        if self.reference {
            self.land_due_reference();
        } else {
            self.land_due_event();
        }
    }

    /// Phase 2: inject up to one thread per replica.
    fn phase_inject(&mut self) {
        if !self.inject_queue.is_empty() {
            self.inject_threads();
        }
    }

    /// Phase 3: fire ready entries, one per (replica, node) per cycle.
    /// The event-driven tick fires node-major coalesced batches; the
    /// reference tick keeps the direct sequential loop as the oracle.
    fn phase_fire<E: FabricEnv + ?Sized>(&mut self, env: &mut E) {
        if self.reference {
            self.fire_sequential(env);
        } else {
            self.fire_batch(env);
        }
    }

    /// Direct fire loop: pop each active (replica, node), evaluate and
    /// commit its front entry immediately, requeue if more entries are
    /// ready. Serves as the reference tick's firing loop and as the batch
    /// engine's degenerate case (average node group too small to coalesce,
    /// where FIFO order already is a node-major order).
    fn fire_sequential<E: FabricEnv + ?Sized>(&mut self, env: &mut E) {
        // The entries about to fire sit at known arena offsets but are
        // randomly scattered (the arena outgrows L2 on big kernels), so
        // request them all up front and let the fetches overlap the
        // firing loop.
        #[cfg(target_arch = "x86_64")]
        self.prefetch_ready_fronts();
        let n_active = self.active.len();
        for _ in 0..n_active {
            let Some((r, node)) = self.active.pop_front() else {
                break;
            };
            let ia = r as usize * self.prog.len() + node as usize;
            self.in_active[ia] = false;
            if let Some(&channel) = self.replicas[r as usize].ready[node as usize].front() {
                let m = self.prog.meta[node as usize];
                let action = self.eval_fire(&m, r, node, channel);
                self.commit_fire(r, node, channel, action, env);
            }
            if !self.replicas[r as usize].ready[node as usize].is_empty() && !self.in_active[ia] {
                self.in_active[ia] = true;
                self.active.push_back((r, node));
            }
        }
    }

    /// Node-major batch fire loop (event-driven tick), the simulator-level
    /// analogue of the paper's control-flow coalescing: this cycle's ready
    /// work is gathered once, regrouped by node so op decode and routing
    /// state stay hot across all ready replicas of a node, then committed
    /// in the original FIFO order.
    ///
    /// Splitting evaluation from commit is sound because, within one fire
    /// phase, (a) deliveries only write entries of *unfired* consumers
    /// (every candidate entry is complete, and a further token to a
    /// complete entry would be a duplicate-port bug checked in
    /// `deliver_outputs`), so candidate operands cannot change after
    /// gather; and (b) each (replica, node) appears at most once per cycle
    /// (`in_active` dedup), so the hazard state read during evaluation
    /// (SCU pool, reservation occupancy) is only mutated by that
    /// candidate's own commit. All order-sensitive effects — token write
    /// sequence, memory issue and functional access order, request-slab
    /// IDs, retirement order, requeue order — replay in ordinal order, so
    /// results are bit-identical to the sequential loop.
    fn fire_batch<E: FabricEnv + ?Sized>(&mut self, env: &mut E) {
        // Coalescing pays for its candidate staging only when node groups
        // are big enough to amortize it. The active set holds distinct
        // (replica, node) pairs, so by pigeonhole the average group across
        // replicas reaches `COALESCE_MIN_GROUP` only once the set is that
        // many times the node count — an O(1) test that routes ordinary
        // cycles (measured average group: 1.0–2.2 on the kernel suite)
        // to the direct fused loop with zero staging.
        if self.active.len() < COALESCE_MIN_GROUP * self.prog.len() {
            return self.fire_sequential(env);
        }
        let n_nodes = self.prog.len();
        let mut scratch = std::mem::take(&mut self.batch);

        // Gather in FIFO order, threading each candidate onto its node's
        // chain. Nothing is delivered or popped here, so each candidate
        // records a stable (node, channel) pair.
        if scratch.head.len() < n_nodes {
            scratch.head.resize(n_nodes, NO_CAND);
            scratch.tail.resize(n_nodes, 0);
        }
        debug_assert!(scratch.head.iter().all(|&h| h == NO_CAND));
        scratch.fifo.clear();
        scratch.next.clear();
        scratch.touched.clear();
        while let Some((r, node)) = self.active.pop_front() {
            self.in_active[r as usize * n_nodes + node as usize] = false;
            let Some(&channel) = self.replicas[r as usize].ready[node as usize].front() else {
                continue;
            };
            let ord = scratch.fifo.len() as u32;
            scratch.fifo.push(Candidate {
                node,
                replica: r,
                channel,
            });
            scratch.next.push(NO_CAND);
            let ni = node as usize;
            if scratch.head[ni] == NO_CAND {
                scratch.head[ni] = ord;
                scratch.touched.push(node);
            } else {
                scratch.next[scratch.tail[ni] as usize] = ord;
            }
            scratch.tail[ni] = ord;
        }
        // Request the batch's buffer-entry run up front; the fetches
        // overlap the node-major evaluation below.
        #[cfg(target_arch = "x86_64")]
        self.prefetch_batch_entries(&scratch.fifo);
        // Evaluate per node group: the op tag is decoded once per node
        // per cycle and applied across all ready replicas. Each node's
        // head is reset as its group is consumed, restoring the all-clear
        // gather invariant for the next cycle. Evaluation order differs
        // from FIFO order but is unobservable (evaluation is pure); the
        // ordered commit pass below restores bit-identical effects.
        scratch.actions.clear();
        scratch
            .actions
            .resize(scratch.fifo.len(), FireAction::RetryScu);
        for &node in &scratch.touched {
            let m = self.prog.meta[node as usize];
            let mut i = scratch.head[node as usize];
            scratch.head[node as usize] = NO_CAND;
            while i != NO_CAND {
                let c = scratch.fifo[i as usize];
                #[cfg(target_arch = "x86_64")]
                self.prefetch_consumers(&m, c.replica as usize, c.channel);
                scratch.actions[i as usize] = self.eval_fire(&m, c.replica, node, c.channel);
                i = scratch.next[i as usize];
            }
        }
        // Commit in FIFO ordinal order.
        for (i, c) in scratch.fifo.iter().enumerate() {
            self.commit_fire(c.replica, c.node, c.channel, scratch.actions[i], env);
            let ia = c.replica as usize * n_nodes + c.node as usize;
            if !self.replicas[c.replica as usize].ready[c.node as usize].is_empty()
                && !self.in_active[ia]
            {
                self.in_active[ia] = true;
                self.active.push_back((c.replica, c.node));
            }
        }
        self.batch = scratch;
    }

    // ---- internals ------------------------------------------------------

    /// Flat index of `(node, channel)` in a replica's token-buffer arena.
    ///
    /// The arena is *node-major*: one node's entries for every channel
    /// form a contiguous row, so a node's ready-front reads and a
    /// producer's per-consumer writes land at a fixed `node * channels`
    /// base plus a small channel offset. (A channel-major layout was
    /// measured within noise of this one; node-major keeps the index
    /// arithmetic identical to the edge table's consumer offsets.)
    #[inline]
    fn buf_idx(&self, node: u32, channel: u32) -> usize {
        node as usize * self.cfg.channels_per_unit as usize + channel as usize
    }

    /// Issues a cache prefetch for the buffer entry at the front of every
    /// active ready queue — the entries the firing loop is about to read.
    #[cfg(target_arch = "x86_64")]
    fn prefetch_ready_fronts(&self) {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        for &(r, node) in self.active.iter() {
            let rep = &self.replicas[r as usize];
            if let Some(&ch) = rep.ready[node as usize].front() {
                let idx = self.buf_idx(node, ch);
                // In bounds by construction; prefetch has no other effect.
                unsafe { _mm_prefetch(rep.buf.as_ptr().add(idx).cast::<i8>(), _MM_HINT_T0) };
            }
        }
    }

    /// Issues a cache prefetch for every gathered candidate's buffer entry
    /// — the batch's input run, resolved to flat arena offsets at gather
    /// time (the batch-engine counterpart of `prefetch_ready_fronts`).
    #[cfg(target_arch = "x86_64")]
    fn prefetch_batch_entries(&self, cands: &[Candidate]) {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        for c in cands {
            let rep = &self.replicas[c.replica as usize];
            let idx = self.buf_idx(c.node, c.channel);
            // In bounds by construction; prefetch has no other effect.
            unsafe { _mm_prefetch(rep.buf.as_ptr().add(idx).cast::<i8>(), _MM_HINT_T0) };
        }
    }

    /// Requests the consumer entries a firing of the node described by
    /// `m` (replica `r`, `channel`) will write, so the fetches overlap
    /// evaluation.
    #[cfg(target_arch = "x86_64")]
    fn prefetch_consumers(&self, m: &NodeMeta, r: usize, channel: u32) {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        let rep = &self.replicas[r];
        let (s, e) = (m.edge_start as usize, m.edge_end as usize);
        let row = channel as usize;
        for edge in &rep.edges[s..e] {
            let idx = edge.consumer as usize * self.cfg.channels_per_unit as usize + row;
            // In bounds by construction; prefetch has no other effect.
            unsafe { _mm_prefetch(rep.buf.as_ptr().add(idx).cast::<i8>(), _MM_HINT_T0) };
        }
    }

    fn land_due_reference(&mut self) {
        let slot = (self.cycle & self.wheel_mask) as usize;
        let Some(due) = take_due_slot(
            &mut self.wheel_tokens,
            &mut self.occ,
            &mut self.wheel_count,
            slot,
        ) else {
            return;
        };
        for &d in due.iter() {
            self.land_token(d);
        }
        restore_slot(&mut self.wheel_tokens, slot, due);
    }

    fn land_token(&mut self, d: Delivery) {
        let idx = self.buf_idx(d.node, d.channel);
        let entry = &mut self.replicas[d.replica as usize].buf[idx];
        debug_assert_eq!(
            entry.arrived & (1 << d.port),
            0,
            "duplicate token on node {} port {} channel {}",
            d.node,
            d.port,
            d.channel
        );
        entry.arrived |= 1 << d.port;
        entry.vals[d.port as usize] = d.value;
        let needed = self.prog.needed[d.node as usize];
        if entry.arrived & needed == needed {
            self.replicas[d.replica as usize].ready[d.node as usize].push_back(d.channel);
            let ia = d.replica as usize * self.prog.len() + d.node as usize;
            if !self.in_active[ia] {
                self.in_active[ia] = true;
                self.active.push_back((d.replica, d.node));
            }
        }
    }

    fn land_due_event(&mut self) {
        let slot = (self.cycle & self.wheel_mask) as usize;
        let Some(mut due) = take_due_slot(
            &mut self.wheel_ready,
            &mut self.occ,
            &mut self.wheel_count,
            slot,
        ) else {
            return;
        };
        // Events were pushed when their entry *completed*, which is not
        // necessarily the order of the completing tokens' write sequence
        // (an entry can complete on an early-sequence token whose arrival
        // outlasts later writes). Sorting by that sequence restores the
        // reference tick's ready order; slots are usually already sorted,
        // which the pattern-defeating sort exploits.
        due.sort_unstable_by_key(|e| e.key);
        let n = self.prog.len();
        for ev in due.iter() {
            let (r, node) = ((ev.target >> 16) as usize, (ev.target & 0xFFFF) as usize);
            debug_assert!({
                let e = &self.replicas[r].buf[self.buf_idx(node as u32, ev.channel)];
                e.arrived & self.prog.needed[node] == self.prog.needed[node]
            });
            self.replicas[r].ready[node].push_back(ev.channel);
            let ia = r * n + node;
            if !self.in_active[ia] {
                self.in_active[ia] = true;
                self.active.push_back((r as u32, node as u32));
            }
        }
        restore_slot(&mut self.wheel_ready, slot, due);
    }

    fn inject_threads(&mut self) {
        for r in 0..self.replicas.len() {
            if self.inject_queue.is_empty() {
                break;
            }
            let Some(&channel) = self.replicas[r].free_channels.last() else {
                continue;
            };
            let tid = self.inject_queue.pop_front().expect("checked non-empty");
            let rep = &mut self.replicas[r];
            rep.free_channels.pop();
            rep.ch_tid[channel as usize] = tid;
            debug_assert_eq!(rep.ch_work[channel as usize], 0);
            rep.ch_work[channel as usize] = (self.prog.len() as u64) << 32;
            self.active_channels += 1;
            self.stats.threads_injected += 1;
            // The initiator fires immediately: its output token carries the
            // thread ID.
            self.count_fire(self.init as usize, r as u32, channel);
            self.deliver_outputs(r as u32, self.init, channel, Word::from_u32(tid));
        }
    }

    /// Sends `value` from `node` to all its consumers; each edge's total
    /// delivery distance (compute latency + hops) was precomputed into the
    /// micro-program at configure time.
    ///
    /// Reference tick: one wheel push per token (the wheel is sized at
    /// configure time to cover every distance, so scheduling is a plain
    /// push). Event-driven tick: the token is written into the consumer's
    /// buffer entry immediately, tagged with its arrival cycle; completing
    /// an entry schedules a single readiness event at the entry's
    /// latest-arrival cycle.
    fn deliver_outputs(&mut self, replica: u32, node: u32, channel: u32, value: Word) {
        let ri = replica as usize;
        let rep = &mut self.replicas[ri];
        let m = &self.prog.meta[node as usize];
        let (start, end) = (m.edge_start as usize, m.edge_end as usize);
        self.stats.hop_traversals += rep.hop_sum[node as usize];
        self.stats.tokens_delivered += (end - start) as u64;
        if self.reference {
            for &MicroEdge {
                consumer,
                dist,
                port,
                ..
            } in &rep.edges[start..end]
            {
                if let Some(n) = self.faults.drop_token {
                    let k = self.fault_tokens;
                    self.fault_tokens += 1;
                    if k == n {
                        continue; // injected fault: token lost in transit
                    }
                }
                debug_assert!(
                    dist > 0 && (dist as u64) < self.wheel_tokens.len() as u64,
                    "delivery distance {dist} escaped configure-time validation"
                );
                let at = self.cycle + dist as u64;
                let slot = (at & self.wheel_mask) as usize;
                self.wheel_tokens[slot].push(Delivery {
                    replica,
                    node: consumer,
                    port,
                    channel,
                    value,
                });
                self.occ.set(slot);
                self.wheel_count += 1;
            }
            return;
        }
        let chn = self.cfg.channels_per_unit as usize;
        let Fabric {
            replicas,
            prog,
            wheel_ready,
            occ,
            wheel_mask,
            wheel_count,
            token_seq,
            cycle,
            faults,
            fault_tokens,
            ..
        } = self;
        let rep = &mut replicas[ri];
        let (edges, buf) = (&rep.edges[start..end], &mut rep.buf);
        // The packed key needs 32 bits per half. The sequence resets at
        // every reconfiguration, so overflowing it would take >4e9 tokens
        // through one configuration; cycles are bounded by the drivers'
        // cycle limits. One cheap always-on check per firing (covering
        // every edge: distances are bounded by the wheel length), since a
        // silent wrap would corrupt firing order.
        assert!(
            (*token_seq + edges.len() as u64) >> 32 == 0
                && (*cycle + wheel_ready.len() as u64) >> 32 == 0,
            "token write sequence or cycle exceeds the packed 32-bit key"
        );
        let row = channel as usize;
        for &MicroEdge {
            consumer,
            dist,
            port,
        } in edges
        {
            if let Some(n) = faults.drop_token {
                let k = *fault_tokens;
                *fault_tokens += 1;
                if k == n {
                    continue; // injected fault: token lost in transit
                }
            }
            debug_assert!(
                dist > 0 && (dist as u64) < wheel_ready.len() as u64,
                "delivery distance {dist} escaped configure-time validation"
            );
            let at = *cycle + dist as u64;
            let seq = *token_seq;
            *token_seq += 1;
            // SAFETY: `consumer` is a validated node index of the configured
            // program and `row` a channel index < channels_per_unit, so the
            // flat index is within the arena sized nodes × channels at
            // configure time; `rslot` is masked by `wheel_mask`, and the
            // wheel is sized to `wheel_mask + 1` slots.
            let entry = unsafe { buf.get_unchecked_mut(consumer as usize * chn + row) };
            debug_assert_eq!(
                entry.arrived & (1 << port),
                0,
                "duplicate token on node {consumer} port {port} channel {channel}",
            );
            entry.arrived |= 1 << port;
            entry.vals[port as usize] = value;
            // Writes happen in increasing sequence, so the packed max
            // keeps the latest (arrival, sequence) pair.
            entry.key = entry.key.max(at << 32 | seq);
            let needed = unsafe { *prog.needed.get_unchecked(consumer as usize) };
            if entry.arrived & needed == needed {
                let key = entry.key;
                let rslot = ((key >> 32) & *wheel_mask) as usize;
                unsafe { wheel_ready.get_unchecked_mut(rslot) }.push(ReadyEvent {
                    target: (replica << 16) | consumer,
                    channel,
                    key,
                });
                occ.set(rslot);
                *wheel_count += 1;
            }
        }
    }

    fn count_fire(&mut self, node: usize, replica: u32, channel: u32) {
        self.stats.firings += 1;
        match self.prog.meta[node].stat_class {
            StatClass::Int => self.stats.int_alu_ops += 1,
            StatClass::Fp => self.stats.fp_ops += 1,
            StatClass::Special => self.stats.special_ops += 1,
            StatClass::SplitJoin => self.stats.split_join_ops += 1,
            StatClass::Other => {}
        }
        let w = &mut self.replicas[replica as usize].ch_work[channel as usize];
        debug_assert!(*w >> 32 != 0, "firing on a freed channel");
        *w -= 1 << 32;
    }

    fn maybe_free_channel(&mut self, replica: u32, channel: u32) {
        let rep = &mut self.replicas[replica as usize];
        if rep.ch_work[channel as usize] == 0 {
            rep.free_channels.push(channel);
            self.active_channels -= 1;
        }
    }

    /// Resolves the value of semantic port `p` for a firing of the node
    /// described by `m`.
    #[inline]
    fn port_val(&self, m: &NodeMeta, node: usize, entry: &BufEntry, p: usize) -> Word {
        if m.static_mask & (1 << p) != 0 {
            self.prog.statics[node][p]
        } else {
            entry.vals[p]
        }
    }

    /// Evaluates one ready entry into its [`FireAction`]: the pure half of
    /// a firing. Reads operands and hazard state (SCU pool, reservation
    /// occupancy) but mutates nothing, so the batch engine can run it
    /// node-major ahead of the ordered commits.
    ///
    /// `inline(always)` so the sequential loop's eval + commit pair fuses
    /// back into one branch over `m.tag` with no materialized
    /// [`FireAction`].
    #[inline(always)]
    fn eval_fire(&self, m: &NodeMeta, replica: u32, node: u32, channel: u32) -> FireAction {
        let r = replica as usize;
        let n = node as usize;
        let rep = &self.replicas[r];
        let entry = &rep.buf[self.buf_idx(node, channel)];
        let reservation_full = || rep.reservation[n] >= self.cfg.reservation_entries;
        match m.tag {
            MicroOp::Init => unreachable!("initiators fire via injection"),
            MicroOp::Unary(u) => FireAction::Compute {
                v: u.eval(self.port_val(m, n, entry, 0)),
                scu: false,
            },
            MicroOp::UnaryScu(u) => {
                if rep.scu_min_free[n] > self.cycle {
                    FireAction::RetryScu
                } else {
                    FireAction::Compute {
                        v: u.eval(self.port_val(m, n, entry, 0)),
                        scu: true,
                    }
                }
            }
            MicroOp::Binary(b) => FireAction::Compute {
                v: b.eval(self.port_val(m, n, entry, 0), self.port_val(m, n, entry, 1)),
                scu: false,
            },
            MicroOp::BinaryScu(b) => {
                if rep.scu_min_free[n] > self.cycle {
                    FireAction::RetryScu
                } else {
                    FireAction::Compute {
                        v: b.eval(self.port_val(m, n, entry, 0), self.port_val(m, n, entry, 1)),
                        scu: true,
                    }
                }
            }
            MicroOp::Select => FireAction::Compute {
                v: eval_select(
                    self.port_val(m, n, entry, 0),
                    self.port_val(m, n, entry, 1),
                    self.port_val(m, n, entry, 2),
                ),
                scu: false,
            },
            MicroOp::Fma => FireAction::Compute {
                v: eval_fma(
                    self.port_val(m, n, entry, 0),
                    self.port_val(m, n, entry, 1),
                    self.port_val(m, n, entry, 2),
                ),
                scu: false,
            },
            MicroOp::Join => FireAction::Compute {
                v: Word::ONE,
                scu: false,
            },
            MicroOp::Pass => FireAction::Compute {
                v: self.port_val(m, n, entry, 0),
                scu: false,
            },
            MicroOp::Load => {
                if reservation_full() {
                    FireAction::RetryFull
                } else {
                    FireAction::Load {
                        addr: self
                            .port_val(m, n, entry, 0)
                            .as_u32()
                            .wrapping_add(m.addr_offset),
                    }
                }
            }
            MicroOp::Store { dyn_gate } => {
                // A predicated-off store issues no memory operation, so it
                // must not block on a full reservation buffer.
                if dyn_gate && !entry.vals[2].as_bool() {
                    FireAction::StoreSuppressed
                } else if reservation_full() {
                    FireAction::RetryFull
                } else {
                    FireAction::Store {
                        addr: self
                            .port_val(m, n, entry, 0)
                            .as_u32()
                            .wrapping_add(m.addr_offset),
                        value: self.port_val(m, n, entry, 1),
                    }
                }
            }
            MicroOp::LvLoad(lv) => {
                if reservation_full() {
                    FireAction::RetryFull
                } else {
                    FireAction::LvLoad {
                        lv,
                        tid: rep.ch_tid[channel as usize],
                    }
                }
            }
            MicroOp::LvStore(lv) => {
                if reservation_full() {
                    FireAction::RetryFull
                } else {
                    FireAction::LvStore {
                        lv,
                        tid: rep.ch_tid[channel as usize],
                        value: self.port_val(m, n, entry, 0),
                    }
                }
            }
            MicroOp::Term { taken, not_taken } => {
                let target = match (taken != NO_TARGET, not_taken != NO_TARGET) {
                    (true, true) => {
                        if self.port_val(m, n, entry, 0).as_bool() {
                            Some(BlockId(taken))
                        } else {
                            Some(BlockId(not_taken))
                        }
                    }
                    (true, false) => Some(BlockId(taken)),
                    _ => None,
                };
                FireAction::Term {
                    tid: rep.ch_tid[channel as usize],
                    target,
                }
            }
        }
    }

    /// Applies one evaluated [`FireAction`]: the effectful half of a
    /// firing. All order-sensitive state — token sequence numbers, memory
    /// issue/acceptance, request-slab IDs, functional memory access,
    /// retirements — is touched only here, so replaying commits in FIFO
    /// ordinal order makes the batch engine bit-identical to the
    /// sequential loop.
    ///
    /// `inline(always)`: see [`Fabric::eval_fire`].
    #[inline(always)]
    fn commit_fire<E: FabricEnv + ?Sized>(
        &mut self,
        replica: u32,
        node: u32,
        channel: u32,
        action: FireAction,
        env: &mut E,
    ) {
        let r = replica as usize;
        let n = node as usize;
        match action {
            FireAction::RetryFull => {
                self.stats.mem_retry_cycles += 1;
            }
            FireAction::RetryScu => {}
            FireAction::Compute { v, scu } => {
                self.finish_fire(r, n, channel);
                if scu {
                    self.occupy_scu(r, n, self.prog.meta[n].latency);
                }
                self.deliver_outputs(replica, node, channel, v);
            }
            FireAction::Load { addr } => {
                let req = self.peek_req();
                if !env.issue_mem(req, addr, false) {
                    self.stats.mem_retry_cycles += 1;
                    return;
                }
                let value = env.mem_read(addr);
                self.begin_mem(r, n, channel, req, value);
                self.finish_fire(r, n, channel);
                self.stats.mem_loads += 1;
            }
            FireAction::Store { addr, value } => {
                let req = self.peek_req();
                if !env.issue_mem(req, addr, true) {
                    self.stats.mem_retry_cycles += 1;
                    return;
                }
                env.mem_write(addr, value);
                self.begin_mem(r, n, channel, req, Word::ZERO);
                self.finish_fire(r, n, channel);
                self.stats.mem_stores += 1;
                // Ordering token released at issue (see on_mem_response).
                self.deliver_outputs(replica, node, channel, Word::ONE);
            }
            FireAction::StoreSuppressed => {
                // Predicated-off store: fires (occupying the unit) but
                // suppresses the write; ordering consumers still get
                // their token.
                self.finish_fire(r, n, channel);
                self.stats.suppressed_stores += 1;
                self.deliver_outputs(replica, node, channel, Word::ONE);
            }
            FireAction::LvLoad { lv, tid } => {
                let req = self.peek_req();
                if !env.issue_lv(req, lv, tid, false) {
                    self.stats.mem_retry_cycles += 1;
                    return;
                }
                let value = env.lv_read(lv, tid);
                self.begin_mem(r, n, channel, req, value);
                self.finish_fire(r, n, channel);
                self.stats.lv_loads += 1;
            }
            FireAction::LvStore { lv, tid, value } => {
                let req = self.peek_req();
                if !env.issue_lv(req, lv, tid, true) {
                    self.stats.mem_retry_cycles += 1;
                    return;
                }
                env.lv_write(lv, tid, value);
                self.begin_mem(r, n, channel, req, Word::ZERO);
                self.finish_fire(r, n, channel);
                self.stats.lv_stores += 1;
                // Ordering token released at issue (see on_mem_response).
                self.deliver_outputs(replica, node, channel, Word::ONE);
            }
            FireAction::Term { tid, target } => {
                self.finish_fire(r, n, channel);
                if let Some(want) = self.faults.drop_retire {
                    let k = self.fault_retires;
                    self.fault_retires += 1;
                    if k == want {
                        // Injected fault: the retirement (and its count)
                        // vanishes between terminator and scheduler, so
                        // injected > retired at drain — the conservation
                        // checker's target.
                        return;
                    }
                }
                self.stats.threads_retired += 1;
                self.retired.push(Retired {
                    replica,
                    tid,
                    target,
                });
            }
        }
    }

    /// Pops the fired channel from the ready queue, clears its buffer entry
    /// and accounts the firing.
    fn finish_fire(&mut self, r: usize, n: usize, channel: u32) {
        let popped = self.replicas[r].ready[n].pop_front();
        debug_assert_eq!(popped, Some(channel));
        let idx = self.buf_idx(n as u32, channel);
        self.replicas[r].buf[idx] = BufEntry::default();
        self.count_fire(n, r as u32, channel);
        // A channel whose last fire just happened (and has no outstanding
        // memory) can be recycled; memory ops call begin_mem before this,
        // and compute outputs, if any, imply unfired consumers.
        self.maybe_free_channel(r as u32, channel);
    }

    /// Request ID the next accepted memory op will use: the first free slab
    /// slot, or a fresh slot at the end. Committed by `begin_mem` once the
    /// environment accepts the issue.
    fn peek_req(&self) -> MemReqId {
        match self.pending_free.last() {
            Some(&slot) => slot as MemReqId,
            None => self.pending_mem.len() as MemReqId,
        }
    }

    fn begin_mem(&mut self, r: usize, n: usize, channel: u32, req: MemReqId, value: Word) {
        let rep = &mut self.replicas[r];
        rep.reservation[n] += 1;
        debug_assert!(
            rep.ch_work[channel as usize] != 0,
            "mem op on freed channel"
        );
        rep.ch_work[channel as usize] += 1;
        let p = PendingMem {
            replica: r as u32,
            node: n as u32,
            channel,
            value,
        };
        let slot = req as usize;
        if slot == self.pending_mem.len() {
            self.pending_mem.push(Some(p));
        } else {
            let popped = self.pending_free.pop();
            debug_assert_eq!(popped, Some(req as u32));
            debug_assert!(self.pending_mem[slot].is_none());
            self.pending_mem[slot] = Some(p);
        }
        self.pending_count += 1;
    }

    fn occupy_scu(&mut self, r: usize, n: usize, latency: u32) {
        let now = self.cycle;
        let rep = &mut self.replicas[r];
        let busy = &mut rep.scu_busy[n];
        let slot = busy
            .iter_mut()
            .find(|b| **b <= now)
            .expect("caller checked scu_min_free");
        *slot = now + latency as u64;
        rep.scu_min_free[n] = busy.iter().copied().min().expect("SCU pool is non-empty");
    }
}

impl std::fmt::Debug for Fabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Fabric {{ {} nodes x {} replicas, cycle {}, {} active channels }}",
            self.prog.len(),
            self.replicas.len(),
            self.cycle,
            self.active_channels
        )
    }
}

impl Fabric {
    /// Releases reservation-buffer occupancy when a response arrives.
    fn release_reservation(&mut self, replica: u32, node: u32) {
        let slot = &mut self.replicas[replica as usize].reservation[node as usize];
        debug_assert!(*slot > 0);
        *slot -= 1;
    }
}

/// Detaches the slot buffer due at `slot` from `wheel`, clearing its
/// occupancy bit and event count. Returns `None` when the slot is empty.
/// Shared drain boilerplate of `land_due_reference`/`land_due_event`.
fn take_due_slot<T>(
    wheel: &mut [Vec<T>],
    occ: &mut SlotBitmap,
    count: &mut usize,
    slot: usize,
) -> Option<Vec<T>> {
    if wheel[slot].is_empty() {
        return None;
    }
    let due = std::mem::take(&mut wheel[slot]);
    occ.clear(slot);
    *count -= due.len();
    Some(due)
}

/// Hands a drained slot buffer back so its capacity is reused on the next
/// wheel revolution. Nothing can have landed in `slot` while it was
/// detached (every delivery distance is ≥ 1).
fn restore_slot<T>(wheel: &mut [Vec<T>], slot: usize, mut due: Vec<T>) {
    due.clear();
    debug_assert!(wheel[slot].is_empty());
    wheel[slot] = due;
}

fn class_latency(class: OpClass, lat: &crate::config::OpLatencies) -> u32 {
    match class {
        OpClass::IntAlu => lat.int_alu,
        OpClass::FpAlu => lat.fp_alu,
        OpClass::Special => lat.special,
    }
}
