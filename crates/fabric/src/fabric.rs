//! Token-level simulation of the multithreaded coarse-grained
//! reconfigurable fabric (MT-CGRF).
//!
//! The fabric is configured with one basic block's dataflow graph (possibly
//! replicated) and then streams threads through it:
//!
//! * each unit owns a token buffer indexed by *virtual execution channel*;
//!   a thread occupies one channel of every unit in its replica while in
//!   flight (§3.5);
//! * a buffer entry fires when all its operand tokens have arrived
//!   (dynamic dataflow firing rule); each unit fires at most one entry per
//!   cycle;
//! * edge latency is the interconnect hop count between the placed units;
//! * LDST/LVU units issue to the memory system through bounded reservation
//!   buffers, letting threads complete out of order and overtake stalled
//!   ones;
//! * SCUs serialize on a pool of non-pipelined instances;
//! * initiator CVUs inject one thread per cycle; terminator CVUs resolve
//!   each thread's next block and retire it toward the scheduler.
//!
//! Every node fires exactly once per thread (the compiler guarantees this
//! by construction), which gives an exact completion condition: a channel
//! is recycled when all nodes fired for its thread and no memory response
//! is outstanding.
//!
//! # Event-driven token delivery
//!
//! Two tick implementations produce identical cycle counts, statistics and
//! retirement order (regression-tested against each other):
//!
//! * The **reference tick** enqueues one timing-wheel entry per token and
//!   lands tokens into consumer buffers when due — a direct transcription
//!   of the hardware's token pipeline.
//! * The default **event-driven tick** writes each token into the
//!   consumer's buffer entry immediately, tagged with its arrival cycle
//!   and a global write sequence number; only the *completion* of an entry
//!   (its last operand) schedules a wheel event, at the entry's
//!   ready-to-fire cycle. A landing slot is sorted by the sequence number
//!   of each entry's latest-arriving token, which reproduces the reference
//!   tick's ready-queue order exactly (wheel pushes happen in sequence
//!   order, so slot order *is* completion order there).
//!
//! This cuts wheel traffic from one event per token to one per firing and
//! halves the buffer-arena traffic. An occupancy bitmap over the wheel
//! makes the next-event query ([`Fabric::next_wheel_event`]) a couple of
//! word scans instead of a slot walk, which is what lets the driving core
//! jump the clock over idle stretches cheaply.

use crate::config::FabricConfig;
use crate::faults::FabricFaults;
use crate::stats::FabricStats;
use std::collections::VecDeque;
use vgiw_compiler::{Dfg, DfgOp, GridSpec, NodeId, Placement, UnitKind, ValSrc};
use vgiw_ir::{eval_fma, eval_select, BlockId, OpClass, Word};
use vgiw_robust::{InvariantKind, InvariantViolation, StuckResource};

/// Request identifier used between the fabric and its memory environment.
pub type MemReqId = u64;

/// Why [`Fabric::configure`] rejected a configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// A `ValSrc::Param` operand indexed past the launch parameter list.
    MissingParam {
        /// The out-of-range parameter index.
        index: u32,
    },
    /// A zero-latency op feeds a same-unit consumer; the token pipeline
    /// requires every edge to take at least one cycle.
    ZeroLatencyEdge,
    /// The worst-case delivery distance exceeds the maximum timing wheel.
    WheelOverflow {
        /// The offending worst-case latency + hop distance, in cycles.
        max_dist: u64,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::MissingParam { index } => {
                write!(f, "missing launch parameter {index}")
            }
            ConfigError::ZeroLatencyEdge => write!(
                f,
                "configuration has a zero-latency edge (0-cycle op feeding a \
                 same-unit consumer); every token must take at least one cycle"
            ),
            ConfigError::WheelOverflow { max_dist } => write!(
                f,
                "worst-case delivery distance {max_dist} cycles exceeds the \
                 maximum timing wheel of {MAX_WHEEL}; reduce op latencies or \
                 the grid diameter"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Pending work at one fabric node, for [`FabricSnapshot`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodePending {
    /// Replica index.
    pub replica: u32,
    /// Node (DFG) index.
    pub node: u32,
    /// Buffer entries holding at least one token, not yet fired.
    pub buffered: u32,
    /// Channels ready to fire at this node.
    pub ready: u32,
}

/// A structural snapshot of in-flight fabric state, taken when the
/// driving core's watchdog expires ([`Fabric::snapshot`]).
#[derive(Clone, Debug)]
pub struct FabricSnapshot {
    /// Fabric cycle at snapshot time.
    pub cycle: u64,
    /// Channels occupied by in-flight threads.
    pub active_channels: u32,
    /// Threads queued for injection.
    pub pending_injections: usize,
    /// Scheduled timing-wheel events.
    pub wheel_events: usize,
    /// Outstanding memory requests (issued, no response yet).
    pub pending_mem: usize,
    /// Per-node pending token state (only nodes with work).
    pub nodes: Vec<NodePending>,
}

impl FabricSnapshot {
    /// Renders the snapshot as stuck-resource entries for a
    /// [`vgiw_robust::DeadlockReport`].
    pub fn stuck_resources(&self) -> Vec<StuckResource> {
        let mut out = vec![StuckResource {
            name: "fabric".to_string(),
            detail: format!(
                "{} active channels, {} queued injections, {} wheel events, \
                 {} outstanding memory requests",
                self.active_channels, self.pending_injections, self.wheel_events, self.pending_mem
            ),
        }];
        for n in &self.nodes {
            out.push(StuckResource {
                name: format!("fabric node {} (replica {})", n.node, n.replica),
                detail: format!(
                    "{} buffered token entries, {} ready channels",
                    n.buffered, n.ready
                ),
            });
        }
        out
    }
}

/// The fabric's window to the memory system and functional state.
///
/// Functional data moves at *issue* time (kernels are data-parallel, so no
/// cross-thread ordering is needed); the request/response pair models
/// timing only. The environment must later hand each accepted request ID
/// back to [`Fabric::on_mem_response`].
pub trait FabricEnv {
    /// Issues a global-memory access for the 32-bit word at `addr_words`.
    /// Returns `false` if the cache cannot accept it this cycle.
    fn issue_mem(&mut self, req: MemReqId, addr_words: u32, is_store: bool) -> bool;
    /// Issues a live-value access for `(lv, tid)`.
    /// Returns `false` if the LVC cannot accept it this cycle.
    fn issue_lv(&mut self, req: MemReqId, lv: u32, tid: u32, is_store: bool) -> bool;
    /// Functional global-memory read (total: out-of-range reads zero).
    fn mem_read(&mut self, addr_words: u32) -> Word;
    /// Functional global-memory write (total: out-of-range writes drop).
    fn mem_write(&mut self, addr_words: u32, value: Word);
    /// Functional live-value read.
    fn lv_read(&mut self, lv: u32, tid: u32) -> Word;
    /// Functional live-value write.
    fn lv_write(&mut self, lv: u32, tid: u32, value: Word);
}

/// A thread retired by a terminator CVU.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Retired {
    /// Which replica's terminator produced it (for batch accounting).
    pub replica: u32,
    /// The thread ID.
    pub tid: u32,
    /// The next block the thread must execute, or `None` on kernel exit.
    pub target: Option<BlockId>,
}

/// Minimum timing-wheel length (a power of two). [`Fabric::configure`]
/// grows the wheel to cover the configuration's worst-case delivery
/// distance, so `schedule` never overflows at runtime.
const MIN_WHEEL: usize = 128;
/// Hard cap on the timing wheel. A configuration whose worst-case
/// latency + hop distance exceeds this is rejected at configure time.
const MAX_WHEEL: usize = 1 << 16;

/// A token in flight (reference tick only).
#[derive(Clone, Copy, Debug)]
struct Delivery {
    replica: u32,
    node: u32,
    port: u8,
    channel: u32,
    value: Word,
}

/// A buffer entry whose last operand has been written (event-driven tick):
/// at the event's wheel slot, the entry enters its node's ready queue.
#[derive(Clone, Copy, Debug)]
struct ReadyEvent {
    /// `(replica << 16) | node`.
    target: u32,
    channel: u32,
    /// The entry's completion key (see [`BufEntry::key`]); sorting a
    /// landing slot by it reproduces the reference tick's ready order
    /// (within one slot all keys share the arrival cycle, so the order is
    /// the write sequence of each entry's latest-arriving token).
    key: u64,
}

#[derive(Clone, Copy, Debug)]
struct PendingMem {
    replica: u32,
    node: u32,
    channel: u32,
    /// Loaded value (for loads / LV loads); ignored for stores.
    value: Word,
}

/// Which statistics counter a firing of this node increments.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum StatClass {
    Int,
    Fp,
    Special,
    SplitJoin,
    Other,
}

#[derive(Clone, Debug)]
struct NodeRt {
    op: DfgOp,
    latency: u32,
    /// Semantic port count.
    n_sem: u8,
    /// Bitmask of token ports that must arrive before firing.
    needed_mask: u8,
    /// Counter bucket for firings (folded out of the fire path's match).
    stat_class: StatClass,
    /// Whether firings occupy an SCU instance.
    is_scu: bool,
    /// Number of consumers (tokens sent per firing).
    out_deg: u32,
    /// Static values for semantic ports (resolved params/immediates).
    static_vals: [Option<Word>; 3],
    /// Resolved static address addend for Load/Store nodes (base+offset
    /// addressing held in the unit's configuration registers).
    addr_offset: u32,
}

/// One token buffer entry, packed to 32 bytes so two entries share every
/// cache line of the (large, randomly accessed) buffer arena.
///
/// `key` tracks the latest-arriving token for the event-driven tick as
/// `(arrival_cycle << 32) | write_sequence` — one `max` per token write
/// keeps the lexicographic maximum of (arrival, sequence), and the packed
/// comparison is exact because the write sequence resets on every
/// (drained) reconfiguration and is checked against 32 bits. The
/// reference tick leaves it at zero.
#[derive(Clone, Copy, Default)]
struct BufEntry {
    vals: [Word; 4],
    key: u64,
    arrived: u8,
}

impl BufEntry {
    fn is_clear(&self) -> bool {
        self.arrived == 0 && self.key == 0
    }
}

/// Occupancy bitmap over timing-wheel slots: one bit per slot, giving the
/// next-event query a short word scan instead of a walk over slot buffers.
#[derive(Default, Debug)]
struct SlotBitmap {
    words: Vec<u64>,
}

impl SlotBitmap {
    /// Sizes for `slots` (a power of two ≥ 64) and clears all bits.
    fn reset(&mut self, slots: usize) {
        debug_assert!(slots.is_power_of_two() && slots >= 64);
        self.words.clear();
        self.words.resize(slots / 64, 0);
    }

    #[inline]
    fn set(&mut self, slot: usize) {
        self.words[slot >> 6] |= 1 << (slot & 63);
    }

    #[inline]
    fn clear(&mut self, slot: usize) {
        self.words[slot >> 6] &= !(1 << (slot & 63));
    }

    /// First occupied slot at or after `start`, searching cyclically for
    /// one full revolution. `None` if the wheel is empty.
    fn next_from(&self, start: usize) -> Option<usize> {
        let nw = self.words.len();
        let sw = start >> 6;
        let first = self.words[sw] & (!0u64 << (start & 63));
        if first != 0 {
            return Some((sw << 6) + first.trailing_zeros() as usize);
        }
        for i in 1..=nw {
            let w = (sw + i) & (nw - 1);
            if self.words[w] != 0 {
                return Some((w << 6) + self.words[w].trailing_zeros() as usize);
            }
        }
        None
    }
}

struct Replica {
    /// Token buffers, one flat row-major arena: entry for `(node, channel)`
    /// lives at `node * channels_per_unit + channel`. One allocation per
    /// replica instead of one per node.
    buf: Vec<BufEntry>,
    /// Thread ID per occupied channel (structure-of-arrays channel state).
    ch_tid: Vec<u32>,
    /// Per-channel completion word: `(remaining_fires << 32) | pending_mem`.
    /// Zero means the channel is free (or just finished and recyclable).
    ch_work: Vec<u64>,
    free_channels: Vec<u32>,
    /// Ready channels per node.
    ready: Vec<VecDeque<u32>>,
    /// SCU instance busy-until times (empty for non-SCU nodes).
    scu_busy: Vec<Vec<u64>>,
    /// Cached `min(scu_busy[n])` so the fire path checks one word.
    scu_min_free: Vec<u64>,
    /// Outstanding memory ops per node (LDST/LVU reservation occupancy).
    reservation: Vec<u32>,
    /// Consumer table in CSR form: node `i`'s consumers are
    /// `edge_data[edge_start[i]..edge_start[i + 1]]` as
    /// `(consumer, port, edge latency)` triples.
    edge_start: Vec<u32>,
    edge_data: Vec<(u32, u8, u32)>,
    /// Sum of hop latencies over node `i`'s outgoing edges (statistics are
    /// folded per firing instead of per token).
    hop_sum: Vec<u64>,
}

/// The MT-CGRF fabric simulator. See the module-level documentation.
pub struct Fabric {
    grid: GridSpec,
    cfg: FabricConfig,
    nodes: Vec<NodeRt>,
    init: u32,
    replicas: Vec<Replica>,
    /// Per-token timing wheel (reference tick); length is a power of two
    /// sized by `configure`.
    wheel_tokens: Vec<Vec<Delivery>>,
    /// Per-completion timing wheel (event-driven tick); same length.
    wheel_ready: Vec<Vec<ReadyEvent>>,
    /// Occupancy bitmap over whichever wheel the active mode uses.
    occ: SlotBitmap,
    wheel_mask: u64,
    wheel_count: usize,
    /// Global token write counter (event-driven tick ordering source).
    token_seq: u64,
    /// Use the naive per-token reference tick instead of the event-driven
    /// core (testing knob; both are stats- and cycle-identical).
    reference: bool,
    cycle: u64,
    inject_queue: VecDeque<u32>,
    /// Nodes with nonempty ready queues: `(replica, node)`; deduplicated
    /// with `in_active`.
    active: VecDeque<(u32, u32)>,
    /// Flat dedup bitmap for `active`: `replica * nodes.len() + node`.
    in_active: Vec<bool>,
    /// Outstanding memory requests as a free-list slab: the request ID *is*
    /// the slot index, so issue and response are both O(1) with no hashing
    /// and no per-request allocation. A slot is recycled only after its
    /// response has been consumed, so IDs never collide in flight.
    pending_mem: Vec<Option<PendingMem>>,
    pending_free: Vec<u32>,
    pending_count: usize,
    retired: Vec<Retired>,
    active_channels: u32,
    stats: FabricStats,
    /// Installed fault plan (all `None` in normal operation).
    faults: FabricFaults,
    /// Token deliveries seen since the fault plan was installed.
    fault_tokens: u64,
    /// Retirements seen since the fault plan was installed.
    fault_retires: u64,
}

impl Fabric {
    /// Creates an unconfigured fabric over `grid`.
    pub fn new(grid: GridSpec, cfg: FabricConfig) -> Fabric {
        let mut occ = SlotBitmap::default();
        occ.reset(MIN_WHEEL);
        Fabric {
            grid,
            cfg,
            nodes: Vec::new(),
            init: 0,
            replicas: Vec::new(),
            wheel_tokens: vec![Vec::new(); MIN_WHEEL],
            wheel_ready: vec![Vec::new(); MIN_WHEEL],
            occ,
            wheel_mask: MIN_WHEEL as u64 - 1,
            wheel_count: 0,
            token_seq: 0,
            reference: false,
            cycle: 0,
            inject_queue: VecDeque::new(),
            active: VecDeque::new(),
            in_active: Vec::new(),
            pending_mem: Vec::new(),
            pending_free: Vec::new(),
            pending_count: 0,
            retired: Vec::new(),
            active_channels: 0,
            stats: FabricStats::default(),
            faults: FabricFaults::default(),
            fault_tokens: 0,
            fault_retires: 0,
        }
    }

    /// Installs a deterministic fault plan (fault-injection tests only)
    /// and resets its event counters. Pass `FabricFaults::default()` to
    /// clear.
    pub fn set_faults(&mut self, faults: FabricFaults) {
        self.faults = faults;
        self.fault_tokens = 0;
        self.fault_retires = 0;
    }

    /// Snapshots in-flight state for a deadlock report: per-node pending
    /// tokens, queued injections, wheel events and outstanding memory.
    pub fn snapshot(&self) -> FabricSnapshot {
        let ch = self.cfg.channels_per_unit as usize;
        let mut nodes = Vec::new();
        for (ri, rep) in self.replicas.iter().enumerate() {
            for n in 0..self.nodes.len() {
                let buffered = rep.buf[n * ch..(n + 1) * ch]
                    .iter()
                    .filter(|e| !e.is_clear())
                    .count() as u32;
                let ready = rep.ready[n].len() as u32;
                if buffered > 0 || ready > 0 {
                    nodes.push(NodePending {
                        replica: ri as u32,
                        node: n as u32,
                        buffered,
                        ready,
                    });
                }
            }
        }
        FabricSnapshot {
            cycle: self.cycle,
            active_channels: self.active_channels,
            pending_injections: self.inject_queue.len(),
            wheel_events: self.wheel_count,
            pending_mem: self.pending_count,
            nodes,
        }
    }

    /// The physical grid this fabric models.
    pub fn grid(&self) -> &GridSpec {
        &self.grid
    }

    /// The fabric sizing/timing configuration.
    pub fn config(&self) -> &FabricConfig {
        &self.cfg
    }

    /// Accumulated statistics (across configurations, until reset).
    pub fn stats(&self) -> &FabricStats {
        &self.stats
    }

    /// Clears statistics.
    pub fn reset_stats(&mut self) {
        self.stats = FabricStats::default();
    }

    /// Current fabric cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Number of replicas currently configured.
    pub fn num_replicas(&self) -> u32 {
        self.replicas.len() as u32
    }

    /// Selects the naive per-token reference tick (`true`) or the default
    /// event-driven tick (`false`). Both produce identical cycle counts,
    /// statistics and retirement order; the reference tick exists as the
    /// equivalence oracle for tests.
    ///
    /// # Panics
    /// Panics if the fabric has threads or tokens in flight.
    pub fn set_reference_tick(&mut self, on: bool) {
        assert!(self.is_drained(), "switching tick mode with work in flight");
        self.reference = on;
    }

    /// Whether the naive reference tick is active.
    pub fn reference_tick(&self) -> bool {
        self.reference
    }

    /// Configures the fabric with `dfg`, one copy per placement in
    /// `placements`. `params` resolves `ValSrc::Param` static operands.
    ///
    /// Validates the configuration's timing envelope: the timing wheel is
    /// resized to cover the worst-case compute latency + hop distance, and
    /// a configuration that cannot be covered (or that contains a
    /// zero-latency edge, which the token pipeline cannot represent) is
    /// rejected with a typed [`ConfigError`] instead of tripping a runtime
    /// assertion mid-simulation. A `ValSrc::Param` operand indexing past
    /// `params` is likewise a [`ConfigError::MissingParam`], not a panic.
    ///
    /// # Panics
    /// Panics if the fabric still has threads in flight or if a placement
    /// does not match the DFG (both are driver bugs, not input errors).
    pub fn configure(
        &mut self,
        dfg: &Dfg,
        placements: &[Placement],
        params: &[Word],
    ) -> Result<(), ConfigError> {
        assert!(
            self.is_drained(),
            "reconfiguring a fabric with threads in flight"
        );
        assert!(!placements.is_empty(), "need at least one replica");
        let lat = self.cfg.latencies;

        self.nodes.clear();
        self.init = dfg.init.0;
        let consumers = dfg.consumers();

        for (i, node) in dfg.nodes.iter().enumerate() {
            let kind = node.op.unit_kind();
            let latency = match node.op {
                DfgOp::Unary(op) => class_latency(op.class(), &lat),
                DfgOp::Binary(op) => class_latency(op.class(), &lat),
                DfgOp::Select => lat.int_alu,
                DfgOp::Fma => lat.fp_alu,
                DfgOp::Load | DfgOp::Store => 1, // plus memory time
                DfgOp::LvLoad(_) | DfgOp::LvStore(_) => 1,
                DfgOp::Init | DfgOp::Term(_) => lat.cvu,
                DfgOp::Join | DfgOp::JoinPass | DfgOp::Split => lat.split_join,
            };
            let stat_class = match kind {
                UnitKind::Alu => match node.op {
                    DfgOp::Binary(op) if op.class() == OpClass::FpAlu => StatClass::Fp,
                    DfgOp::Unary(op) if op.class() == OpClass::FpAlu => StatClass::Fp,
                    DfgOp::Fma => StatClass::Fp,
                    _ => StatClass::Int,
                },
                UnitKind::Scu => StatClass::Special,
                UnitKind::SplitJoin => StatClass::SplitJoin,
                _ => StatClass::Other,
            };
            let mut static_vals = [None; 3];
            let mut needed_mask = 0u8;
            for (p, src) in node.inputs.iter().enumerate() {
                match *src {
                    ValSrc::Node(_) => needed_mask |= 1 << p,
                    ValSrc::Imm(w) => static_vals[p] = Some(w),
                    ValSrc::Param(idx) => {
                        let w = *params
                            .get(idx as usize)
                            .ok_or(ConfigError::MissingParam { index: idx.into() })?;
                        static_vals[p] = Some(w);
                    }
                }
            }
            if node.trigger.is_some() {
                needed_mask |= 1 << node.trigger_port();
            }
            let mut addr_offset = 0u32;
            for off in &node.offsets {
                let v = match *off {
                    ValSrc::Imm(w) => w.as_u32(),
                    ValSrc::Param(idx) => params
                        .get(idx as usize)
                        .ok_or(ConfigError::MissingParam { index: idx.into() })?
                        .as_u32(),
                    ValSrc::Node(_) => unreachable!("offsets are static by construction"),
                };
                addr_offset = addr_offset.wrapping_add(v);
            }
            self.nodes.push(NodeRt {
                op: node.op,
                latency,
                n_sem: node.inputs.len() as u8,
                needed_mask,
                stat_class,
                is_scu: kind == UnitKind::Scu,
                out_deg: consumers[i].len() as u32,
                static_vals,
                addr_offset,
            });
        }

        let n = dfg.nodes.len();
        assert!(
            n < (1 << 16) && placements.len() < (1 << 16),
            "node/replica counts must fit the 16-bit event key"
        );
        let ch = self.cfg.channels_per_unit as usize;
        // Reconfiguration happens once per block execution — squarely on
        // the hot path for control-heavy kernels — so replica storage is
        // reset in place rather than reallocated. A drained fabric leaves
        // every token buffer entry cleared (each fire resets its entry),
        // every channel freed, every ready queue empty and every
        // reservation at zero, so most resets are resizes over
        // already-clean memory.
        self.replicas.truncate(placements.len());
        while self.replicas.len() < placements.len() {
            self.replicas.push(Replica {
                buf: Vec::new(),
                ch_tid: Vec::new(),
                ch_work: Vec::new(),
                free_channels: Vec::new(),
                ready: Vec::new(),
                scu_busy: Vec::new(),
                scu_min_free: Vec::new(),
                reservation: Vec::new(),
                edge_start: Vec::new(),
                edge_data: Vec::new(),
                hop_sum: Vec::new(),
            });
        }
        // Worst-case delivery distance (compute latency + interconnect
        // hops) across every edge of every placement, used to size the
        // timing wheel below.
        let mut max_dist: u64 = 0;
        for (rep, p) in self.replicas.iter_mut().zip(placements) {
            assert_eq!(p.node_unit.len(), n, "placement/DFG mismatch");
            debug_assert!(rep.buf.iter().all(BufEntry::is_clear), "drained buf dirty");
            rep.buf.resize(n * ch, BufEntry::default());
            debug_assert!(rep.ch_work.iter().all(|&w| w == 0));
            rep.ch_tid.clear();
            rep.ch_tid.resize(ch, 0);
            rep.ch_work.clear();
            rep.ch_work.resize(ch, 0);
            rep.free_channels.clear();
            rep.free_channels.extend((0..ch as u32).rev());
            debug_assert!(rep.ready.iter().all(VecDeque::is_empty));
            rep.ready.truncate(n);
            while rep.ready.len() < n {
                rep.ready.push(VecDeque::new());
            }
            rep.scu_busy.clear();
            rep.scu_busy.extend(self.nodes.iter().map(|nd| {
                if nd.is_scu {
                    vec![0u64; self.cfg.scu_instances as usize]
                } else {
                    Vec::new()
                }
            }));
            rep.scu_min_free.clear();
            rep.scu_min_free.resize(n, 0);
            debug_assert!(rep.reservation.iter().all(|&r| r == 0));
            rep.reservation.clear();
            rep.reservation.resize(n, 0);
            rep.edge_start.clear();
            rep.edge_data.clear();
            rep.hop_sum.clear();
            for (i, cons) in consumers.iter().enumerate() {
                rep.edge_start.push(rep.edge_data.len() as u32);
                let latency = self.nodes[i].latency as u64;
                let mut hop_sum = 0u64;
                for &(c, port) in cons {
                    let hops = p.edge_latency(&self.grid, NodeId(i as u32), c);
                    max_dist = max_dist.max(latency + hops as u64);
                    hop_sum += hops as u64;
                    rep.edge_data.push((c.0, port, hops));
                }
                rep.hop_sum.push(hop_sum);
            }
            rep.edge_start.push(rep.edge_data.len() as u32);
        }
        self.size_wheel(max_dist)?;
        debug_assert!(
            self.in_active.iter().all(|&b| !b),
            "active residue after drain"
        );
        self.in_active.clear();
        self.in_active.resize(n * placements.len(), false);
        self.active.clear();
        // The wheel is empty and every buffer entry clear (asserted
        // above), so no in-flight key can compare against a post-reset
        // sequence number.
        self.token_seq = 0;
        Ok(())
    }

    /// Grows the timing wheel (always a power of two, never shrunk — slot
    /// buffers keep their capacity across configurations) so every delivery
    /// distance in `[1, max_dist]` fits, or rejects the configuration.
    fn size_wheel(&mut self, max_dist: u64) -> Result<(), ConfigError> {
        // A delivery distance of zero would land a token in the slot being
        // drained; the pipeline model requires every edge to take ≥ 1 cycle.
        if self.nodes.iter().enumerate().any(|(i, nd)| {
            nd.latency == 0 && {
                let any_zero_hop = self.replicas.iter().any(|rep| {
                    let s = rep.edge_start[i] as usize;
                    let e = rep.edge_start[i + 1] as usize;
                    rep.edge_data[s..e].iter().any(|&(_, _, hops)| hops == 0)
                });
                any_zero_hop
            }
        }) {
            return Err(ConfigError::ZeroLatencyEdge);
        }
        let needed = (max_dist + 1).max(MIN_WHEEL as u64);
        if needed > MAX_WHEEL as u64 {
            return Err(ConfigError::WheelOverflow { max_dist });
        }
        let len = needed.next_power_of_two() as usize;
        if len > self.wheel_tokens.len() {
            debug_assert_eq!(self.wheel_count, 0, "resizing a non-empty wheel");
            self.wheel_tokens.resize_with(len, Vec::new);
            self.wheel_ready.resize_with(len, Vec::new);
        }
        if self.occ.words.len() * 64 != self.wheel_tokens.len() {
            self.occ.reset(self.wheel_tokens.len());
        }
        self.wheel_mask = self.wheel_tokens.len() as u64 - 1;
        Ok(())
    }

    /// Queues a thread for injection (the BBS streaming thread batches).
    pub fn inject(&mut self, tid: u32) {
        self.inject_queue.push_back(tid);
    }

    /// Threads waiting to enter the fabric.
    pub fn pending_injections(&self) -> usize {
        self.inject_queue.len()
    }

    /// Whether the fabric could accept more injected threads without the
    /// queue growing (a free channel exists on some replica).
    pub fn has_free_channel(&self) -> bool {
        self.replicas.iter().any(|r| !r.free_channels.is_empty())
    }

    /// Threads retired since the last drain.
    pub fn drain_retired(&mut self) -> Vec<Retired> {
        std::mem::take(&mut self.retired)
    }

    /// Appends threads retired since the last drain to `out`, recycling the
    /// caller's buffer instead of allocating a fresh `Vec` per cycle.
    pub fn drain_retired_into(&mut self, out: &mut Vec<Retired>) {
        out.append(&mut self.retired);
    }

    /// True when no thread is in flight and nothing is queued.
    pub fn is_drained(&self) -> bool {
        self.active_channels == 0
            && self.inject_queue.is_empty()
            && self.wheel_count == 0
            && self.pending_count == 0
    }

    /// True when ticking the fabric can do no work until an in-flight token
    /// lands or a memory response arrives: no node is ready (or retrying a
    /// stalled memory issue), and no queued thread has a channel to enter.
    /// Idle cycles in this state are safe to fast-forward.
    pub fn is_quiescent(&self) -> bool {
        self.active.is_empty() && (self.inject_queue.is_empty() || !self.has_free_channel())
    }

    /// Absolute cycle at which the earliest scheduled wheel event (a token
    /// landing, or an entry becoming ready) occurs, if any. O(wheel/64)
    /// worst case via the occupancy bitmap.
    pub fn next_wheel_event(&self) -> Option<u64> {
        if self.wheel_count == 0 {
            return None;
        }
        let start = ((self.cycle + 1) & self.wheel_mask) as usize;
        let slot = self.occ.next_from(start)?;
        let dist = (slot.wrapping_sub(start) as u64) & self.wheel_mask;
        Some(self.cycle + 1 + dist)
    }

    /// Jumps the clock forward by `k` idle cycles in one step. The caller
    /// must have established quiescence ([`Fabric::is_quiescent`]) and that
    /// no wheel event lands in the skipped range; statistics stay
    /// cycle-exact because an idle `tick` would only have advanced
    /// `busy_cycles`.
    pub fn advance_idle(&mut self, k: u64) {
        debug_assert!(
            self.is_quiescent(),
            "fast-forwarding a non-quiescent fabric"
        );
        self.cycle += k;
        self.stats.busy_cycles += k;
    }

    /// Completes a batch of memory requests in order, prefetching each
    /// request's delivery targets a few responses ahead (response bursts
    /// write consumer entries scattered across the buffer arena).
    ///
    /// # Errors
    /// Propagates the first pairing violation from
    /// [`Fabric::on_mem_response`]; remaining responses are not applied.
    pub fn on_mem_responses(&mut self, reqs: &[MemReqId]) -> Result<(), InvariantViolation> {
        const LOOKAHEAD: usize = 8;
        for (i, &req) in reqs.iter().enumerate() {
            #[cfg(target_arch = "x86_64")]
            if let Some(&ahead) = reqs.get(i + LOOKAHEAD) {
                self.prefetch_response_target(ahead);
            }
            self.on_mem_response(req)?;
        }
        Ok(())
    }

    /// Issues cache prefetches for the consumer entries a pending memory
    /// response will write when delivered.
    #[cfg(target_arch = "x86_64")]
    fn prefetch_response_target(&self, req: MemReqId) {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        if let Some(Some(p)) = self.pending_mem.get(req as usize) {
            let rep = &self.replicas[p.replica as usize];
            let s = rep.edge_start[p.node as usize] as usize;
            let e = rep.edge_start[p.node as usize + 1] as usize;
            for &(consumer, _, _) in &rep.edge_data[s..e] {
                let idx = self.buf_idx(consumer, p.channel);
                // In bounds by construction; prefetch has no other effect.
                unsafe { _mm_prefetch(rep.buf.as_ptr().add(idx).cast::<i8>(), _MM_HINT_T0) };
            }
        }
    }

    /// Completes a memory request previously accepted by the environment.
    ///
    /// # Errors
    /// A response whose request is unknown or already completed is a
    /// memory request/response pairing violation (always checked — the
    /// slab lookup is the completion path anyway).
    pub fn on_mem_response(&mut self, req: MemReqId) -> Result<(), InvariantViolation> {
        let Some(p) = self
            .pending_mem
            .get_mut(req as usize)
            .and_then(Option::take)
        else {
            return Err(InvariantViolation {
                kind: InvariantKind::MemPairing,
                machine: "fabric",
                cycle: self.cycle,
                detail: format!(
                    "response for unknown or already-completed memory request {req} \
                     ({} outstanding)",
                    self.pending_count
                ),
            });
        };
        self.pending_free.push(req as u32);
        self.pending_count -= 1;
        let node = &self.nodes[p.node as usize];
        let is_load = matches!(node.op, DfgOp::Load | DfgOp::LvLoad(_));
        let unit_latency = node.latency;
        if is_load {
            // The unit's own pipeline stage applies on top of the memory
            // response, matching the store paths.
            self.deliver_outputs(p.replica, p.node, p.channel, p.value, unit_latency);
        }
        // Stores delivered their ordering token at issue time (once the
        // banked cache accepts an access, per-address ordering is
        // maintained by in-order bank service); the response only frees
        // the reservation entry and completes the sink.
        self.release_reservation(p.replica, p.node);
        let rep = &mut self.replicas[p.replica as usize];
        debug_assert!(rep.ch_work[p.channel as usize] & 0xFFFF_FFFF > 0);
        rep.ch_work[p.channel as usize] -= 1;
        self.maybe_free_channel(p.replica, p.channel);
        Ok(())
    }

    /// Advances one cycle: lands due events, injects threads, fires ready
    /// entries.
    pub fn tick<E: FabricEnv + ?Sized>(&mut self, env: &mut E) {
        self.cycle += 1;
        self.stats.busy_cycles += 1;

        // 1. Land events due this cycle. The slot buffer is taken, drained
        //    and handed back so its capacity is reused every wheel
        //    revolution: events always target a *future* slot (distance
        //    ≥ 1, enforced at configure time), so nothing lands in `slot`
        //    while it is detached.
        if self.reference {
            self.land_due_reference();
        } else {
            self.land_due_event();
        }

        // 2. Inject up to one thread per replica.
        if !self.inject_queue.is_empty() {
            self.inject_threads();
        }

        // 3. Fire ready entries: one per (replica, node) per cycle. The
        //    entries about to fire sit at known arena offsets but are
        //    randomly scattered (the arena outgrows L2 on big kernels), so
        //    request them all up front and let the fetches overlap the
        //    firing loop.
        #[cfg(target_arch = "x86_64")]
        self.prefetch_ready_fronts();
        let n_active = self.active.len();
        for _ in 0..n_active {
            let Some((r, node)) = self.active.pop_front() else {
                break;
            };
            let ia = r as usize * self.nodes.len() + node as usize;
            self.in_active[ia] = false;
            self.try_fire(r, node, env);
            if !self.replicas[r as usize].ready[node as usize].is_empty() && !self.in_active[ia] {
                self.in_active[ia] = true;
                self.active.push_back((r, node));
            }
        }
    }

    // ---- internals ------------------------------------------------------

    /// Flat index of `(node, channel)` in a replica's token-buffer arena.
    #[inline]
    fn buf_idx(&self, node: u32, channel: u32) -> usize {
        node as usize * self.cfg.channels_per_unit as usize + channel as usize
    }

    /// Issues a cache prefetch for the buffer entry at the front of every
    /// active ready queue — the entries the firing loop is about to read.
    #[cfg(target_arch = "x86_64")]
    fn prefetch_ready_fronts(&self) {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        for &(r, node) in self.active.iter() {
            let rep = &self.replicas[r as usize];
            if let Some(&ch) = rep.ready[node as usize].front() {
                let idx = self.buf_idx(node, ch);
                // In bounds by construction; prefetch has no other effect.
                unsafe { _mm_prefetch(rep.buf.as_ptr().add(idx).cast::<i8>(), _MM_HINT_T0) };
            }
        }
    }

    fn land_due_reference(&mut self) {
        let slot = (self.cycle & self.wheel_mask) as usize;
        if self.wheel_tokens[slot].is_empty() {
            return;
        }
        let mut due = std::mem::take(&mut self.wheel_tokens[slot]);
        self.occ.clear(slot);
        self.wheel_count -= due.len();
        for &d in due.iter() {
            self.land_token(d);
        }
        due.clear();
        debug_assert!(self.wheel_tokens[slot].is_empty());
        self.wheel_tokens[slot] = due;
    }

    fn land_token(&mut self, d: Delivery) {
        let idx = self.buf_idx(d.node, d.channel);
        let entry = &mut self.replicas[d.replica as usize].buf[idx];
        debug_assert_eq!(
            entry.arrived & (1 << d.port),
            0,
            "duplicate token on node {} port {} channel {}",
            d.node,
            d.port,
            d.channel
        );
        entry.arrived |= 1 << d.port;
        entry.vals[d.port as usize] = d.value;
        let needed = self.nodes[d.node as usize].needed_mask;
        if entry.arrived & needed == needed {
            self.replicas[d.replica as usize].ready[d.node as usize].push_back(d.channel);
            let ia = d.replica as usize * self.nodes.len() + d.node as usize;
            if !self.in_active[ia] {
                self.in_active[ia] = true;
                self.active.push_back((d.replica, d.node));
            }
        }
    }

    fn land_due_event(&mut self) {
        let slot = (self.cycle & self.wheel_mask) as usize;
        if self.wheel_ready[slot].is_empty() {
            return;
        }
        let mut due = std::mem::take(&mut self.wheel_ready[slot]);
        self.occ.clear(slot);
        self.wheel_count -= due.len();
        // Events were pushed when their entry *completed*, which is not
        // necessarily the order of the completing tokens' write sequence
        // (an entry can complete on an early-sequence token whose arrival
        // outlasts later writes). Sorting by that sequence restores the
        // reference tick's ready order; slots are usually already sorted,
        // which the pattern-defeating sort exploits.
        due.sort_unstable_by_key(|e| e.key);
        let n = self.nodes.len();
        for ev in due.iter() {
            let (r, node) = ((ev.target >> 16) as usize, (ev.target & 0xFFFF) as usize);
            debug_assert!({
                let e = &self.replicas[r].buf[self.buf_idx(node as u32, ev.channel)];
                e.arrived & self.nodes[node].needed_mask == self.nodes[node].needed_mask
            });
            self.replicas[r].ready[node].push_back(ev.channel);
            let ia = r * n + node;
            if !self.in_active[ia] {
                self.in_active[ia] = true;
                self.active.push_back((r as u32, node as u32));
            }
        }
        due.clear();
        debug_assert!(self.wheel_ready[slot].is_empty());
        self.wheel_ready[slot] = due;
    }

    fn inject_threads(&mut self) {
        for r in 0..self.replicas.len() {
            if self.inject_queue.is_empty() {
                break;
            }
            let Some(&channel) = self.replicas[r].free_channels.last() else {
                continue;
            };
            let tid = self.inject_queue.pop_front().expect("checked non-empty");
            let rep = &mut self.replicas[r];
            rep.free_channels.pop();
            rep.ch_tid[channel as usize] = tid;
            debug_assert_eq!(rep.ch_work[channel as usize], 0);
            rep.ch_work[channel as usize] = (self.nodes.len() as u64) << 32;
            self.active_channels += 1;
            self.stats.threads_injected += 1;
            // The initiator fires immediately: its output token carries the
            // thread ID.
            self.count_fire(self.init as usize, r as u32, channel);
            let lat = self.nodes[self.init as usize].latency;
            self.deliver_outputs(r as u32, self.init, channel, Word::from_u32(tid), lat);
        }
    }

    /// Sends `value` from `node` to all its consumers, `extra` cycles after
    /// now (compute latency), plus per-edge hop latency.
    ///
    /// Reference tick: one wheel push per token (the wheel is sized at
    /// configure time to cover every distance, so scheduling is a plain
    /// push). Event-driven tick: the token is written into the consumer's
    /// buffer entry immediately, tagged with its arrival cycle; completing
    /// an entry schedules a single readiness event at the entry's
    /// latest-arrival cycle.
    fn deliver_outputs(&mut self, replica: u32, node: u32, channel: u32, value: Word, extra: u32) {
        let chans = self.cfg.channels_per_unit as usize;
        let ri = replica as usize;
        let rep = &mut self.replicas[ri];
        let start = rep.edge_start[node as usize] as usize;
        let end = rep.edge_start[node as usize + 1] as usize;
        self.stats.hop_traversals += rep.hop_sum[node as usize];
        self.stats.tokens_delivered += self.nodes[node as usize].out_deg as u64;
        if self.reference {
            for &(consumer, port, hops) in &rep.edge_data[start..end] {
                if let Some(n) = self.faults.drop_token {
                    let k = self.fault_tokens;
                    self.fault_tokens += 1;
                    if k == n {
                        continue; // injected fault: token lost in transit
                    }
                }
                let dist = extra as u64 + hops as u64;
                debug_assert!(
                    dist > 0 && dist < self.wheel_tokens.len() as u64,
                    "delivery distance {dist} escaped configure-time validation"
                );
                let at = self.cycle + dist;
                let slot = (at & self.wheel_mask) as usize;
                self.wheel_tokens[slot].push(Delivery {
                    replica,
                    node: consumer,
                    port,
                    channel,
                    value,
                });
                self.occ.set(slot);
                self.wheel_count += 1;
            }
            return;
        }
        let Fabric {
            replicas,
            nodes,
            wheel_ready,
            occ,
            wheel_mask,
            wheel_count,
            token_seq,
            cycle,
            faults,
            fault_tokens,
            ..
        } = self;
        let rep = &mut replicas[ri];
        let (edges, buf) = (&rep.edge_data[start..end], &mut rep.buf);
        for &(consumer, port, hops) in edges {
            if let Some(n) = faults.drop_token {
                let k = *fault_tokens;
                *fault_tokens += 1;
                if k == n {
                    continue; // injected fault: token lost in transit
                }
            }
            let dist = extra as u64 + hops as u64;
            debug_assert!(
                dist > 0 && dist < wheel_ready.len() as u64,
                "delivery distance {dist} escaped configure-time validation"
            );
            let at = *cycle + dist;
            let seq = *token_seq;
            *token_seq += 1;
            // The packed key needs 32 bits per half. The sequence resets
            // at every reconfiguration, so overflowing it would take >4e9
            // tokens through one configuration; cycles are bounded by the
            // drivers' cycle limits. Cheap always-on checks, since a
            // silent wrap would corrupt firing order.
            assert!(
                seq >> 32 == 0 && at >> 32 == 0,
                "token write sequence or cycle exceeds the packed 32-bit key"
            );
            let entry = &mut buf[consumer as usize * chans + channel as usize];
            debug_assert_eq!(
                entry.arrived & (1 << port),
                0,
                "duplicate token on node {consumer} port {port} channel {channel}",
            );
            entry.arrived |= 1 << port;
            entry.vals[port as usize] = value;
            // Writes happen in increasing sequence, so the packed max
            // keeps the latest (arrival, sequence) pair.
            entry.key = entry.key.max(at << 32 | seq);
            let needed = nodes[consumer as usize].needed_mask;
            if entry.arrived & needed == needed {
                let rslot = ((entry.key >> 32) & *wheel_mask) as usize;
                wheel_ready[rslot].push(ReadyEvent {
                    target: (replica << 16) | consumer,
                    channel,
                    key: entry.key,
                });
                occ.set(rslot);
                *wheel_count += 1;
            }
        }
    }

    fn count_fire(&mut self, node: usize, replica: u32, channel: u32) {
        self.stats.firings += 1;
        match self.nodes[node].stat_class {
            StatClass::Int => self.stats.int_alu_ops += 1,
            StatClass::Fp => self.stats.fp_ops += 1,
            StatClass::Special => self.stats.special_ops += 1,
            StatClass::SplitJoin => self.stats.split_join_ops += 1,
            StatClass::Other => {}
        }
        let w = &mut self.replicas[replica as usize].ch_work[channel as usize];
        debug_assert!(*w >> 32 != 0, "firing on a freed channel");
        *w -= 1 << 32;
    }

    fn maybe_free_channel(&mut self, replica: u32, channel: u32) {
        let rep = &mut self.replicas[replica as usize];
        if rep.ch_work[channel as usize] == 0 {
            rep.free_channels.push(channel);
            self.active_channels -= 1;
        }
    }

    /// Resolves the value of semantic port `p` for a firing.
    fn port_val(&self, node: usize, entry: &BufEntry, p: usize) -> Word {
        match self.nodes[node].static_vals[p] {
            Some(w) => w,
            None => entry.vals[p],
        }
    }

    fn try_fire<E: FabricEnv + ?Sized>(&mut self, replica: u32, node: u32, env: &mut E) {
        let r = replica as usize;
        let n = node as usize;
        let Some(&channel) = self.replicas[r].ready[n].front() else {
            return;
        };
        // Request the consumer entries this firing will write (in
        // deliver_outputs, after evaluation) while the operands are read.
        #[cfg(target_arch = "x86_64")]
        {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            let rep = &self.replicas[r];
            let s = rep.edge_start[n] as usize;
            let e = rep.edge_start[n + 1] as usize;
            for &(consumer, _, _) in &rep.edge_data[s..e] {
                let idx = self.buf_idx(consumer, channel);
                // In bounds by construction; prefetch has no other effect.
                unsafe { _mm_prefetch(rep.buf.as_ptr().add(idx).cast::<i8>(), _MM_HINT_T0) };
            }
        }
        let entry = self.replicas[r].buf[self.buf_idx(node, channel)];
        let op = self.nodes[n].op;
        let n_sem = self.nodes[n].n_sem as usize;
        let latency = self.nodes[n].latency;

        // Memory-facing nodes may have to retry. A predicated-off store
        // issues no memory operation, so it must not block on a full
        // reservation buffer.
        let suppressed_store = matches!(op, DfgOp::Store)
            && n_sem == 3
            && !entry.vals[2].as_bool()
            && self.nodes[n].static_vals[2].is_none();
        match op {
            DfgOp::Load | DfgOp::Store | DfgOp::LvLoad(_) | DfgOp::LvStore(_)
                if !suppressed_store
                    && self.replicas[r].reservation[n] >= self.cfg.reservation_entries =>
            {
                self.stats.mem_retry_cycles += 1;
                return;
            }
            DfgOp::Unary(_) | DfgOp::Binary(_)
                if self.nodes[n].is_scu && self.replicas[r].scu_min_free[n] > self.cycle =>
            {
                return;
            }
            _ => {}
        }

        match op {
            DfgOp::Init => unreachable!("initiators fire via injection"),
            DfgOp::Unary(u) => {
                let v = u.eval(self.port_val(n, &entry, 0));
                self.finish_fire(r, n, channel);
                if self.nodes[n].is_scu {
                    self.occupy_scu(r, n, latency);
                }
                self.deliver_outputs(replica, node, channel, v, latency);
            }
            DfgOp::Binary(b) => {
                let v = b.eval(self.port_val(n, &entry, 0), self.port_val(n, &entry, 1));
                self.finish_fire(r, n, channel);
                if self.nodes[n].is_scu {
                    self.occupy_scu(r, n, latency);
                }
                self.deliver_outputs(replica, node, channel, v, latency);
            }
            DfgOp::Select => {
                let v = eval_select(
                    self.port_val(n, &entry, 0),
                    self.port_val(n, &entry, 1),
                    self.port_val(n, &entry, 2),
                );
                self.finish_fire(r, n, channel);
                self.deliver_outputs(replica, node, channel, v, latency);
            }
            DfgOp::Fma => {
                let v = eval_fma(
                    self.port_val(n, &entry, 0),
                    self.port_val(n, &entry, 1),
                    self.port_val(n, &entry, 2),
                );
                self.finish_fire(r, n, channel);
                self.deliver_outputs(replica, node, channel, v, latency);
            }
            DfgOp::Join => {
                self.finish_fire(r, n, channel);
                self.deliver_outputs(replica, node, channel, Word::ONE, latency);
            }
            DfgOp::JoinPass | DfgOp::Split => {
                let v = self.port_val(n, &entry, 0);
                self.finish_fire(r, n, channel);
                self.deliver_outputs(replica, node, channel, v, latency);
            }
            DfgOp::Load => {
                let addr = self
                    .port_val(n, &entry, 0)
                    .as_u32()
                    .wrapping_add(self.nodes[n].addr_offset);
                let req = self.peek_req();
                if !env.issue_mem(req, addr, false) {
                    self.stats.mem_retry_cycles += 1;
                    return;
                }
                let value = env.mem_read(addr);
                self.begin_mem(r, n, channel, req, value);
                self.finish_fire(r, n, channel);
                self.stats.mem_loads += 1;
            }
            DfgOp::Store => {
                if !suppressed_store {
                    let addr = self
                        .port_val(n, &entry, 0)
                        .as_u32()
                        .wrapping_add(self.nodes[n].addr_offset);
                    let value = self.port_val(n, &entry, 1);
                    let req = self.peek_req();
                    if !env.issue_mem(req, addr, true) {
                        self.stats.mem_retry_cycles += 1;
                        return;
                    }
                    env.mem_write(addr, value);
                    self.begin_mem(r, n, channel, req, Word::ZERO);
                    self.finish_fire(r, n, channel);
                    self.stats.mem_stores += 1;
                    // Ordering token released at issue (see on_mem_response).
                    self.deliver_outputs(replica, node, channel, Word::ONE, latency);
                } else {
                    // Predicated-off store: fires (occupying the unit) but
                    // suppresses the write; ordering consumers still get
                    // their token.
                    self.finish_fire(r, n, channel);
                    self.stats.suppressed_stores += 1;
                    self.deliver_outputs(replica, node, channel, Word::ONE, latency);
                }
            }
            DfgOp::LvLoad(lv) => {
                let tid = self.replicas[r].ch_tid[channel as usize];
                let req = self.peek_req();
                if !env.issue_lv(req, lv.0, tid, false) {
                    self.stats.mem_retry_cycles += 1;
                    return;
                }
                let value = env.lv_read(lv.0, tid);
                self.begin_mem(r, n, channel, req, value);
                self.finish_fire(r, n, channel);
                self.stats.lv_loads += 1;
            }
            DfgOp::LvStore(lv) => {
                let tid = self.replicas[r].ch_tid[channel as usize];
                let value = self.port_val(n, &entry, 0);
                let req = self.peek_req();
                if !env.issue_lv(req, lv.0, tid, true) {
                    self.stats.mem_retry_cycles += 1;
                    return;
                }
                env.lv_write(lv.0, tid, value);
                self.begin_mem(r, n, channel, req, Word::ZERO);
                self.finish_fire(r, n, channel);
                self.stats.lv_stores += 1;
                // Ordering token released at issue (see on_mem_response).
                self.deliver_outputs(replica, node, channel, Word::ONE, latency);
            }
            DfgOp::Term(targets) => {
                let tid = self.replicas[r].ch_tid[channel as usize];
                let target = match (targets.taken, targets.not_taken) {
                    (Some(t), Some(f)) => {
                        if self.port_val(n, &entry, 0).as_bool() {
                            Some(t)
                        } else {
                            Some(f)
                        }
                    }
                    (Some(t), None) => Some(t),
                    _ => None,
                };
                self.finish_fire(r, n, channel);
                if let Some(want) = self.faults.drop_retire {
                    let k = self.fault_retires;
                    self.fault_retires += 1;
                    if k == want {
                        // Injected fault: the retirement (and its count)
                        // vanishes between terminator and scheduler, so
                        // injected > retired at drain — the conservation
                        // checker's target.
                        return;
                    }
                }
                self.stats.threads_retired += 1;
                self.retired.push(Retired {
                    replica,
                    tid,
                    target,
                });
            }
        }
    }

    /// Pops the fired channel from the ready queue, clears its buffer entry
    /// and accounts the firing.
    fn finish_fire(&mut self, r: usize, n: usize, channel: u32) {
        let popped = self.replicas[r].ready[n].pop_front();
        debug_assert_eq!(popped, Some(channel));
        let idx = self.buf_idx(n as u32, channel);
        self.replicas[r].buf[idx] = BufEntry::default();
        self.count_fire(n, r as u32, channel);
        // A channel whose last fire just happened (and has no outstanding
        // memory) can be recycled; memory ops call begin_mem before this,
        // and compute outputs, if any, imply unfired consumers.
        self.maybe_free_channel(r as u32, channel);
    }

    /// Request ID the next accepted memory op will use: the first free slab
    /// slot, or a fresh slot at the end. Committed by `begin_mem` once the
    /// environment accepts the issue.
    fn peek_req(&self) -> MemReqId {
        match self.pending_free.last() {
            Some(&slot) => slot as MemReqId,
            None => self.pending_mem.len() as MemReqId,
        }
    }

    fn begin_mem(&mut self, r: usize, n: usize, channel: u32, req: MemReqId, value: Word) {
        let rep = &mut self.replicas[r];
        rep.reservation[n] += 1;
        debug_assert!(
            rep.ch_work[channel as usize] != 0,
            "mem op on freed channel"
        );
        rep.ch_work[channel as usize] += 1;
        let p = PendingMem {
            replica: r as u32,
            node: n as u32,
            channel,
            value,
        };
        let slot = req as usize;
        if slot == self.pending_mem.len() {
            self.pending_mem.push(Some(p));
        } else {
            let popped = self.pending_free.pop();
            debug_assert_eq!(popped, Some(req as u32));
            debug_assert!(self.pending_mem[slot].is_none());
            self.pending_mem[slot] = Some(p);
        }
        self.pending_count += 1;
    }

    fn occupy_scu(&mut self, r: usize, n: usize, latency: u32) {
        let now = self.cycle;
        let rep = &mut self.replicas[r];
        let busy = &mut rep.scu_busy[n];
        let slot = busy
            .iter_mut()
            .find(|b| **b <= now)
            .expect("caller checked scu_min_free");
        *slot = now + latency as u64;
        rep.scu_min_free[n] = busy.iter().copied().min().expect("SCU pool is non-empty");
    }
}

impl std::fmt::Debug for Fabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Fabric {{ {} nodes x {} replicas, cycle {}, {} active channels }}",
            self.nodes.len(),
            self.replicas.len(),
            self.cycle,
            self.active_channels
        )
    }
}

impl Fabric {
    /// Releases reservation-buffer occupancy when a response arrives.
    fn release_reservation(&mut self, replica: u32, node: u32) {
        let slot = &mut self.replicas[replica as usize].reservation[node as usize];
        debug_assert!(*slot > 0);
        *slot -= 1;
    }
}

fn class_latency(class: OpClass, lat: &crate::config::OpLatencies) -> u32 {
    match class {
        OpClass::IntAlu => lat.int_alu,
        OpClass::FpAlu => lat.fp_alu,
        OpClass::Special => lat.special,
    }
}
