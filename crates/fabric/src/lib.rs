//! The multithreaded coarse-grained reconfigurable fabric (MT-CGRF).
//!
//! This crate simulates the paper's execution core at token level: units
//! with virtual-channel token buffers, static per-block configurations from
//! the `vgiw-compiler` place & route, dynamic (tagged-token) dataflow
//! firing, bounded LDST reservation buffers, SCU instance pools and CVU
//! thread initiation/termination. See [`Fabric`] for the simulation API
//! and [`FabricEnv`] for the memory-system binding.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod config;
mod fabric;
pub mod faults;
mod stats;
pub mod test_env;

pub use config::{FabricConfig, OpLatencies};
pub use fabric::{ConfigError, Fabric, FabricEnv, FabricSnapshot, MemReqId, NodePending, Retired};
pub use faults::{FabricFaults, FaultyEnv};
pub use stats::{FabricStats, TickPhases};
