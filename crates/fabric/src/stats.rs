//! Fabric execution statistics, consumed by reports and the energy model.

use vgiw_trace::Counters;

/// Event counters accumulated while streaming threads through the fabric.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct FabricStats {
    /// Integer ALU operations executed.
    pub int_alu_ops: u64,
    /// Pipelined FP operations executed.
    pub fp_ops: u64,
    /// Non-pipelined special operations executed.
    pub special_ops: u64,
    /// Split/join firings.
    pub split_join_ops: u64,
    /// Initiator firings (threads injected).
    pub threads_injected: u64,
    /// Terminator firings (threads retired).
    pub threads_retired: u64,
    /// Global memory loads issued.
    pub mem_loads: u64,
    /// Global memory stores issued (suppressed stores excluded).
    pub mem_stores: u64,
    /// Stores suppressed by a false gate (SGMF predication waste).
    pub suppressed_stores: u64,
    /// Live value loads issued.
    pub lv_loads: u64,
    /// Live value stores issued.
    pub lv_stores: u64,
    /// Tokens delivered into token buffers.
    pub tokens_delivered: u64,
    /// Sum over tokens of the hop distance they travelled.
    pub hop_traversals: u64,
    /// Cycles a ready memory operation was held back by a full reservation
    /// buffer or a rejected cache access.
    pub mem_retry_cycles: u64,
    /// Total firings (any node).
    pub firings: u64,
    /// Cycles the fabric ticked while executing this configuration.
    pub busy_cycles: u64,
}

impl FabricStats {
    /// Merges another counter set into this one.
    pub fn merge(&mut self, other: &FabricStats) {
        self.int_alu_ops += other.int_alu_ops;
        self.fp_ops += other.fp_ops;
        self.special_ops += other.special_ops;
        self.split_join_ops += other.split_join_ops;
        self.threads_injected += other.threads_injected;
        self.threads_retired += other.threads_retired;
        self.mem_loads += other.mem_loads;
        self.mem_stores += other.mem_stores;
        self.suppressed_stores += other.suppressed_stores;
        self.lv_loads += other.lv_loads;
        self.lv_stores += other.lv_stores;
        self.tokens_delivered += other.tokens_delivered;
        self.hop_traversals += other.hop_traversals;
        self.mem_retry_cycles += other.mem_retry_cycles;
        self.firings += other.firings;
        self.busy_cycles += other.busy_cycles;
    }

    /// Exports every field into `out` under `<prefix>.<field>`
    /// (e.g. `vgiw.fabric.firings`).
    pub fn export_counters(&self, out: &mut Counters, prefix: &str) {
        let fields: [(&str, u64); 16] = [
            ("int_alu_ops", self.int_alu_ops),
            ("fp_ops", self.fp_ops),
            ("special_ops", self.special_ops),
            ("split_join_ops", self.split_join_ops),
            ("threads_injected", self.threads_injected),
            ("threads_retired", self.threads_retired),
            ("mem_loads", self.mem_loads),
            ("mem_stores", self.mem_stores),
            ("suppressed_stores", self.suppressed_stores),
            ("lv_loads", self.lv_loads),
            ("lv_stores", self.lv_stores),
            ("tokens_delivered", self.tokens_delivered),
            ("hop_traversals", self.hop_traversals),
            ("mem_retry_cycles", self.mem_retry_cycles),
            ("firings", self.firings),
            ("busy_cycles", self.busy_cycles),
        ];
        for (name, v) in fields {
            out.add_u64(&format!("{prefix}.{name}"), v);
        }
    }

    /// Average functional-unit utilization: firings per unit per cycle.
    pub fn utilization(&self, num_units: usize) -> f64 {
        if self.busy_cycles == 0 {
            return 0.0;
        }
        self.firings as f64 / (self.busy_cycles as f64 * num_units as f64)
    }
}

/// Wall time spent in each phase of `Fabric::tick`, in nanoseconds.
///
/// Collected only when phase timing is switched on
/// (`Fabric::set_time_phases`): the timer reads are a pure observer —
/// simulation results are bit-identical with or without them — but cost
/// real wall time, so the perf harness gathers these in a dedicated
/// timing pass rather than on measured runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct TickPhases {
    /// Landing due wheel events (token deliveries / readiness events).
    pub land_ns: u64,
    /// Injecting queued threads into free channels.
    pub inject_ns: u64,
    /// Firing ready entries (gather, evaluate, commit).
    pub fire_ns: u64,
}

impl TickPhases {
    /// Merges another phase breakdown into this one.
    pub fn merge(&mut self, other: &TickPhases) {
        self.land_ns += other.land_ns;
        self.inject_ns += other.inject_ns;
        self.fire_ns += other.fire_ns;
    }

    /// Total wall time across all phases.
    pub fn total_ns(&self) -> u64 {
        self.land_ns + self.inject_ns + self.fire_ns
    }

    /// Whether any phase time was recorded.
    pub fn is_zero(&self) -> bool {
        self.total_ns() == 0
    }

    /// Exports the phase times into `out` under `<prefix>.<phase>_ns`
    /// (e.g. `vgiw.fabric.phase.fire_ns`).
    pub fn export_counters(&self, out: &mut Counters, prefix: &str) {
        let fields: [(&str, u64); 3] = [
            ("land_ns", self.land_ns),
            ("inject_ns", self.inject_ns),
            ("fire_ns", self.fire_ns),
        ];
        for (name, v) in fields {
            out.add_u64(&format!("{prefix}.{name}"), v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds() {
        let mut a = FabricStats {
            int_alu_ops: 2,
            firings: 5,
            ..FabricStats::default()
        };
        let b = FabricStats {
            int_alu_ops: 3,
            firings: 1,
            ..FabricStats::default()
        };
        a.merge(&b);
        assert_eq!(a.int_alu_ops, 5);
        assert_eq!(a.firings, 6);
    }

    #[test]
    fn utilization_bounds() {
        let s = FabricStats {
            firings: 54,
            busy_cycles: 1,
            ..FabricStats::default()
        };
        assert_eq!(s.utilization(108), 0.5);
        assert_eq!(FabricStats::default().utilization(108), 0.0);
    }
}
