//! Deterministic fault injection for the fabric and its environment.
//!
//! Together with [`vgiw_robust::ResponseTamper`] (which drops or
//! duplicates memory responses in flight) this module covers the fault
//! classes the robustness layer must catch:
//!
//! * [`FabricFaults::drop_token`] — a token vanishes on the interconnect;
//!   the consuming entry never completes and its channel never frees, so
//!   the fabric never drains and the driving core's watchdog must fire.
//! * [`FabricFaults::drop_retire`] — a terminator resolves a thread but
//!   the retirement never reaches the scheduler; the fabric drains with
//!   fewer retirements than injections, which the token-conservation
//!   checker must flag.
//! * [`FaultyEnv::stall_after`] — the memory system wedges (a stuck
//!   MSHR): after the nth accepted request every issue is refused, the
//!   fabric retries forever, and the watchdog must fire.
//!
//! All faults are keyed by deterministic event counters, so a given fault
//! plan reproduces the same failure on every run.

use crate::fabric::{FabricEnv, MemReqId};
use vgiw_ir::Word;

/// A deterministic fault plan applied inside the fabric (see
/// [`crate::Fabric::set_faults`]). Counters are 0-based and monotonic
/// from the moment the plan is installed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FabricFaults {
    /// Silently drop the nth token delivery (the token is accounted in
    /// statistics but never written to its consumer).
    pub drop_token: Option<u64>,
    /// Swallow the nth thread retirement (the terminator fires but the
    /// scheduler never sees the thread again).
    pub drop_retire: Option<u64>,
}

impl FabricFaults {
    /// A plan dropping token delivery `n`.
    pub fn drop_token(n: u64) -> Self {
        FabricFaults {
            drop_token: Some(n),
            ..Default::default()
        }
    }

    /// A plan swallowing retirement `n`.
    pub fn drop_retire(n: u64) -> Self {
        FabricFaults {
            drop_retire: Some(n),
            ..Default::default()
        }
    }
}

/// A [`FabricEnv`] wrapper that wedges the memory system after a set
/// number of accepted requests, modeling a stuck MSHR / dead cache port:
/// every subsequent issue is refused, so the fabric spins on retries.
#[derive(Debug)]
pub struct FaultyEnv<E> {
    /// The wrapped environment (public so tests can drive its clock).
    pub inner: E,
    /// Refuse every issue after this many have been accepted.
    pub stall_after: Option<u64>,
    accepted: u64,
}

impl<E> FaultyEnv<E> {
    /// Wraps `inner`; no fault until [`FaultyEnv::stall_after`] is set.
    pub fn new(inner: E) -> Self {
        FaultyEnv {
            inner,
            stall_after: None,
            accepted: 0,
        }
    }

    fn wedged(&self) -> bool {
        self.stall_after.is_some_and(|n| self.accepted >= n)
    }
}

impl<E: FabricEnv> FabricEnv for FaultyEnv<E> {
    fn issue_mem(&mut self, req: MemReqId, addr_words: u32, is_store: bool) -> bool {
        if self.wedged() {
            return false;
        }
        let ok = self.inner.issue_mem(req, addr_words, is_store);
        self.accepted += u64::from(ok);
        ok
    }

    fn issue_lv(&mut self, req: MemReqId, lv: u32, tid: u32, is_store: bool) -> bool {
        if self.wedged() {
            return false;
        }
        let ok = self.inner.issue_lv(req, lv, tid, is_store);
        self.accepted += u64::from(ok);
        ok
    }

    fn mem_read(&mut self, addr_words: u32) -> Word {
        self.inner.mem_read(addr_words)
    }

    fn mem_write(&mut self, addr_words: u32, value: Word) {
        self.inner.mem_write(addr_words, value);
    }

    fn lv_read(&mut self, lv: u32, tid: u32) -> Word {
        self.inner.lv_read(lv, tid)
    }

    fn lv_write(&mut self, lv: u32, tid: u32, value: Word) {
        self.inner.lv_write(lv, tid, value);
    }
}
