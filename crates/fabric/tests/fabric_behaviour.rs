//! Targeted behavioural tests of the fabric's microarchitectural
//! mechanisms: channel recycling, out-of-order completion, reservation
//! back-pressure, SCU instance pools and statistics accounting.

use vgiw_compiler::{compile, GridSpec};
use vgiw_fabric::test_env::FixedLatencyEnv;
use vgiw_fabric::{Fabric, FabricConfig, FabricEnv, MemReqId};
use vgiw_ir::{Kernel, KernelBuilder, MemoryImage, UnaryOp, Word};

fn simple_store_kernel() -> Kernel {
    let mut b = KernelBuilder::new("k", 1);
    let tid = b.thread_id();
    let base = b.param(0);
    let addr = b.add(base, tid);
    b.store(addr, tid);
    b.finish()
}

fn drain(fabric: &mut Fabric, env: &mut FixedLatencyEnv, limit: u64) -> Vec<vgiw_fabric::Retired> {
    let mut retired = Vec::new();
    let mut spin = 0;
    while !fabric.is_drained() {
        fabric.tick(env);
        for req in env.tick() {
            fabric.on_mem_response(req).expect("paired response");
        }
        retired.extend(fabric.drain_retired());
        spin += 1;
        assert!(spin < limit, "fabric failed to drain");
    }
    retired
}

#[test]
fn channels_recycle_for_more_threads_than_buffer_entries() {
    let grid = GridSpec::paper();
    let ck = compile(&simple_store_kernel(), &grid).unwrap();
    // Tiny buffers: forces recycling.
    let cfg = FabricConfig {
        channels_per_unit: 4,
        ..FabricConfig::default()
    };
    let mut fabric = Fabric::new(grid, cfg);
    let mut env = FixedLatencyEnv::new(MemoryImage::new(4096), 0, 2048, 12);

    let cb = &ck.blocks[0];
    fabric
        .configure(&cb.dfg, &cb.replicas[..1], &[Word::ZERO])
        .expect("configure");
    for tid in 0..2048 {
        fabric.inject(tid);
    }
    let retired = drain(&mut fabric, &mut env, 2_000_000);
    assert_eq!(retired.len(), 2048);
    assert_eq!(fabric.stats().threads_injected, 2048);
    assert_eq!(fabric.stats().threads_retired, 2048);
    for t in 0..2048u32 {
        assert_eq!(env.mem.read(t).as_u32(), t, "thread {t} store lost");
    }
}

#[test]
fn threads_complete_out_of_order_past_stalled_ones() {
    // A latency-heavy environment: with many channels, later-injected
    // threads can retire before earlier ones whose memory is in flight.
    let grid = GridSpec::paper();
    // Kernel: out[tid] = in[tid] (load then store) — per-thread latency is
    // dominated by memory.
    let mut b = KernelBuilder::new("copy", 2);
    let tid = b.thread_id();
    let src = b.param(0);
    let dst = b.param(1);
    let sa = b.add(src, tid);
    let v = b.load(sa);
    let da = b.add(dst, tid);
    b.store(da, v);
    let k = b.finish();
    let ck = compile(&k, &grid).unwrap();
    let mut fabric = Fabric::new(grid, FabricConfig::default());
    let mut env = FixedLatencyEnv::new(MemoryImage::new(2048), 0, 512, 40);
    let cb = &ck.blocks[0];
    fabric
        .configure(&cb.dfg, &cb.replicas, &[Word::ZERO, Word::from_u32(512)])
        .expect("configure");
    for tid in 0..512 {
        fabric.inject(tid);
    }
    let retired = drain(&mut fabric, &mut env, 2_000_000);
    assert_eq!(retired.len(), 512);
    // All correct regardless of completion order.
    for t in 0..512u32 {
        assert_eq!(env.mem.read(512 + t), env.mem.read(t));
    }
}

/// An environment that rejects the first `reject_n` issue attempts, to
/// exercise the retry path.
struct RejectingEnv {
    inner: FixedLatencyEnv,
    rejects_left: u32,
}

impl FabricEnv for RejectingEnv {
    fn issue_mem(&mut self, req: MemReqId, addr: u32, is_store: bool) -> bool {
        if self.rejects_left > 0 {
            self.rejects_left -= 1;
            return false;
        }
        self.inner.issue_mem(req, addr, is_store)
    }
    fn issue_lv(&mut self, req: MemReqId, lv: u32, tid: u32, is_store: bool) -> bool {
        self.inner.issue_lv(req, lv, tid, is_store)
    }
    fn mem_read(&mut self, a: u32) -> Word {
        self.inner.mem_read(a)
    }
    fn mem_write(&mut self, a: u32, v: Word) {
        self.inner.mem_write(a, v)
    }
    fn lv_read(&mut self, lv: u32, tid: u32) -> Word {
        self.inner.lv_read(lv, tid)
    }
    fn lv_write(&mut self, lv: u32, tid: u32, v: Word) {
        self.inner.lv_write(lv, tid, v)
    }
}

#[test]
fn rejected_memory_issues_are_retried() {
    let grid = GridSpec::paper();
    let ck = compile(&simple_store_kernel(), &grid).unwrap();
    let mut fabric = Fabric::new(grid, FabricConfig::default());
    let mut env = RejectingEnv {
        inner: FixedLatencyEnv::new(MemoryImage::new(256), 0, 64, 6),
        rejects_left: 100,
    };
    let cb = &ck.blocks[0];
    fabric
        .configure(&cb.dfg, &cb.replicas[..1], &[Word::ZERO])
        .expect("configure");
    for tid in 0..64 {
        fabric.inject(tid);
    }
    let mut spin = 0;
    while !fabric.is_drained() {
        fabric.tick(&mut env);
        for req in env.inner.tick() {
            fabric.on_mem_response(req).expect("paired response");
        }
        fabric.drain_retired();
        spin += 1;
        assert!(spin < 100_000);
    }
    assert!(
        fabric.stats().mem_retry_cycles >= 100,
        "retries must be counted"
    );
    for t in 0..64u32 {
        assert_eq!(env.inner.mem.read(t).as_u32(), t);
    }
}

#[test]
fn scu_instances_limit_nonpipelined_throughput() {
    // A sqrt-only kernel: SCU instance count bounds throughput.
    let mut b = KernelBuilder::new("roots", 1);
    let tid = b.thread_id();
    let base = b.param(0);
    let f = b.u2f(tid);
    let r = b.unary(UnaryOp::FSqrt, f);
    let addr = b.add(base, tid);
    b.store(addr, r);
    let k = b.finish();
    let grid = GridSpec::paper();
    let ck = compile(&k, &grid).unwrap();

    let run = |instances: u32| -> u64 {
        let cfg = FabricConfig {
            scu_instances: instances,
            ..FabricConfig::default()
        };
        let mut fabric = Fabric::new(GridSpec::paper(), cfg);
        let mut env = FixedLatencyEnv::new(MemoryImage::new(1024), 0, 512, 4);
        let cb = &ck.blocks[0];
        fabric
            .configure(&cb.dfg, &cb.replicas[..1], &[Word::ZERO])
            .expect("configure");
        for tid in 0..512 {
            fabric.inject(tid);
        }
        drain(&mut fabric, &mut env, 2_000_000);
        fabric.cycle()
    };

    let slow = run(1);
    let fast = run(16);
    assert!(
        fast * 2 < slow,
        "16 SCU instances ({fast}) should be much faster than 1 ({slow})"
    );
}

#[test]
fn stats_account_every_thread_and_token() {
    let grid = GridSpec::paper();
    let ck = compile(&simple_store_kernel(), &grid).unwrap();
    let mut fabric = Fabric::new(grid, FabricConfig::default());
    let mut env = FixedLatencyEnv::new(MemoryImage::new(512), 0, 128, 4);
    let cb = &ck.blocks[0];
    fabric
        .configure(&cb.dfg, &cb.replicas, &[Word::ZERO])
        .expect("configure");
    for tid in 0..128 {
        fabric.inject(tid);
    }
    drain(&mut fabric, &mut env, 1_000_000);
    let s = fabric.stats();
    assert_eq!(s.threads_injected, 128);
    assert_eq!(s.threads_retired, 128);
    assert_eq!(s.mem_stores, 128);
    assert_eq!(s.mem_loads, 0);
    // Every node fires exactly once per thread.
    assert_eq!(s.firings % 128, 0);
    assert!(s.tokens_delivered > 0 && s.hop_traversals >= s.tokens_delivered);
    assert!(s.utilization(108) > 0.0 && s.utilization(108) <= 1.0);
}

#[test]
fn reconfiguration_between_blocks_is_clean() {
    // Configure A, run; configure B, run; memory effects of both visible.
    let grid = GridSpec::paper();
    let ck = compile(&simple_store_kernel(), &grid).unwrap();

    let mut b = KernelBuilder::new("k2", 1);
    let tid = b.thread_id();
    let base = b.param(0);
    let addr = b.add(base, tid);
    let hundred = b.const_u32(100);
    let v = b.add(tid, hundred);
    b.store(addr, v);
    let k2 = b.finish();
    let ck2 = compile(&k2, &grid).unwrap();

    let mut fabric = Fabric::new(grid, FabricConfig::default());
    let mut env = FixedLatencyEnv::new(MemoryImage::new(512), 0, 64, 4);

    let cb = &ck.blocks[0];
    fabric
        .configure(&cb.dfg, &cb.replicas, &[Word::ZERO])
        .expect("configure");
    for tid in 0..32 {
        fabric.inject(tid);
    }
    drain(&mut fabric, &mut env, 100_000);

    let cb2 = &ck2.blocks[0];
    fabric
        .configure(&cb2.dfg, &cb2.replicas, &[Word::from_u32(64)])
        .expect("configure");
    for tid in 0..32 {
        fabric.inject(tid);
    }
    drain(&mut fabric, &mut env, 100_000);

    for t in 0..32u32 {
        assert_eq!(env.mem.read(t).as_u32(), t);
        assert_eq!(env.mem.read(64 + t).as_u32(), t + 100);
    }
}
