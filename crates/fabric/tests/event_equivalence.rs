//! Equivalence of the event-driven fabric core against the retained dense
//! reference tick: identical retirement order, cycle counts and statistics
//! on compiled blocks, with and without idle cycle skipping, including
//! channel-recycling pressure and reconfiguration after a skipped run.

use vgiw_compiler::{compile, CompiledKernel, GridSpec};
use vgiw_fabric::test_env::FixedLatencyEnv;
use vgiw_fabric::{Fabric, FabricConfig, FabricStats, Retired};
use vgiw_ir::{Kernel, KernelBuilder, MemoryImage, UnaryOp, Word};

fn store_kernel() -> Kernel {
    let mut b = KernelBuilder::new("store", 1);
    let tid = b.thread_id();
    let base = b.param(0);
    let addr = b.add(base, tid);
    b.store(addr, tid);
    b.finish()
}

fn copy_kernel() -> Kernel {
    let mut b = KernelBuilder::new("copy", 2);
    let tid = b.thread_id();
    let src = b.param(0);
    let dst = b.param(1);
    let sa = b.add(src, tid);
    let v = b.load(sa);
    let da = b.add(dst, tid);
    b.store(da, v);
    b.finish()
}

fn sqrt_kernel() -> Kernel {
    let mut b = KernelBuilder::new("roots", 1);
    let tid = b.thread_id();
    let base = b.param(0);
    let f = b.u2f(tid);
    let r = b.unary(UnaryOp::FSqrt, f);
    let addr = b.add(base, tid);
    b.store(addr, r);
    b.finish()
}

fn branchy_kernel() -> Kernel {
    // Multi-block: retirements carry branch targets.
    let mut b = KernelBuilder::new("branchy", 1);
    let tid = b.thread_id();
    let base = b.param(0);
    let addr = b.add(base, tid);
    let hundred = b.const_u32(100);
    let c = b.lt_u(tid, hundred);
    b.if_(c, |b| {
        let one = b.const_u32(1);
        let v = b.add(tid, one);
        b.store(addr, v);
    });
    b.finish()
}

/// One complete run of block 0 of `ck`: configure, inject `threads`,
/// drain. `reference` selects the dense reference tick; `skip` drives the
/// fabric with processor-style idle fast-forward (only meaningful for the
/// event-driven core). Returns everything the two schedules must agree on.
struct RunOut {
    retired: Vec<Retired>,
    cycles: u64,
    stats: FabricStats,
    mem: MemoryImage,
    skipped: u64,
}

#[allow(clippy::too_many_arguments)]
fn run_block(
    ck: &CompiledKernel,
    cfg: FabricConfig,
    params: &[Word],
    threads: u32,
    mem_words: u32,
    latency: u64,
    reference: bool,
    skip: bool,
) -> RunOut {
    let mut fabric = Fabric::new(GridSpec::paper(), cfg);
    fabric.set_reference_tick(reference);
    let mut env = FixedLatencyEnv::new(
        MemoryImage::new(mem_words as usize),
        ck.num_live_values(),
        threads,
        latency,
    );
    let cb = &ck.blocks[0];
    fabric
        .configure(&cb.dfg, &cb.replicas, params)
        .expect("configure");
    for tid in 0..threads {
        fabric.inject(tid);
    }

    let mut retired = Vec::new();
    let mut skipped = 0u64;
    let mut spin = 0u64;
    while !fabric.is_drained() {
        if skip && fabric.is_quiescent() {
            let now = fabric.cycle();
            let next = match (fabric.next_wheel_event(), env.next_event_cycle()) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, None) => a,
                (None, b) => b,
            };
            if let Some(t) = next {
                if t > now + 1 {
                    let k = t - now - 1;
                    fabric.advance_idle(k);
                    env.advance_idle(k);
                    skipped += k;
                }
            }
        }
        fabric.tick(&mut env);
        for req in env.tick() {
            fabric.on_mem_response(req).expect("paired response");
        }
        retired.extend(fabric.drain_retired());
        spin += 1;
        assert!(spin < 2_000_000, "fabric failed to drain");
    }
    RunOut {
        retired,
        cycles: fabric.cycle(),
        stats: *fabric.stats(),
        mem: env.mem,
        skipped,
    }
}

/// Runs the reference tick and the event-driven core (dense and skipping)
/// on the same block and asserts they are indistinguishable.
fn assert_equivalent(
    name: &str,
    ck: &CompiledKernel,
    cfg: FabricConfig,
    params: &[Word],
    threads: u32,
    latency: u64,
) {
    let mem_words = 4 * threads.max(64);
    let reference = run_block(ck, cfg, params, threads, mem_words, latency, true, false);
    let dense = run_block(ck, cfg, params, threads, mem_words, latency, false, false);
    let skipping = run_block(ck, cfg, params, threads, mem_words, latency, false, true);

    for (mode, got) in [("dense", &dense), ("skipping", &skipping)] {
        assert_eq!(
            reference.retired, got.retired,
            "{name}/{mode}: retirement order diverges from reference tick"
        );
        assert_eq!(
            reference.cycles, got.cycles,
            "{name}/{mode}: cycle count diverges"
        );
        assert_eq!(
            reference.stats, got.stats,
            "{name}/{mode}: fabric statistics diverge"
        );
        for a in 0..mem_words {
            assert_eq!(
                reference.mem.read(a),
                got.mem.read(a),
                "{name}/{mode}: memory diverges at word {a}"
            );
        }
    }
    assert_eq!(reference.skipped, 0);
    assert_eq!(dense.skipped, 0);
}

#[test]
fn store_block_matches_reference() {
    let ck = compile(&store_kernel(), &GridSpec::paper()).unwrap();
    assert_equivalent("store", &ck, FabricConfig::default(), &[Word::ZERO], 256, 4);
}

#[test]
fn memory_bound_block_matches_reference() {
    // Long latency: retirements complete far out of order and the
    // skipping drain actually skips.
    let ck = compile(&copy_kernel(), &GridSpec::paper()).unwrap();
    assert_equivalent(
        "copy",
        &ck,
        FabricConfig::default(),
        &[Word::ZERO, Word::from_u32(512)],
        512,
        40,
    );
}

#[test]
fn scu_blocked_block_matches_reference() {
    // SCU occupancy keeps nodes blocked-but-active: the event core must
    // not skip over their retries.
    let ck = compile(&sqrt_kernel(), &GridSpec::paper()).unwrap();
    let cfg = FabricConfig {
        scu_instances: 1,
        ..FabricConfig::default()
    };
    assert_equivalent("sqrt", &ck, cfg, &[Word::ZERO], 256, 4);
}

#[test]
fn branchy_block_matches_reference() {
    let ck = compile(&branchy_kernel(), &GridSpec::paper()).unwrap();
    assert_equivalent(
        "branchy",
        &ck,
        FabricConfig::default(),
        &[Word::ZERO],
        512,
        6,
    );
}

#[test]
fn channel_recycling_matches_reference_under_skipping() {
    // Tiny channel pool with far more threads than channels: entries and
    // channels are recycled constantly, while long memory latency makes
    // the skipping drain jump over idle stretches. Channel bookkeeping
    // must survive both at once.
    let ck = compile(&store_kernel(), &GridSpec::paper()).unwrap();
    let cfg = FabricConfig {
        channels_per_unit: 4,
        ..FabricConfig::default()
    };
    assert_equivalent("recycle", &ck, cfg, &[Word::ZERO], 2048, 12);

    // The skipping run must genuinely have skipped on the memory-bound
    // kernel, or these tests prove nothing about cycle skipping.
    let ck = compile(&copy_kernel(), &GridSpec::paper()).unwrap();
    let out = run_block(
        &ck,
        FabricConfig::default(),
        &[Word::ZERO, Word::from_u32(64)],
        64,
        256,
        40,
        false,
        true,
    );
    assert!(out.skipped > 0, "fast-forward never engaged");
}

#[test]
fn reconfigure_rebuilds_micro_program() {
    // Alternating kernels with clashing node shapes (a Load where the
    // other kernel has pure compute, different latencies, edge tables and
    // static operands at the same node indices) through ONE fabric must
    // behave exactly like fresh fabrics: any stale micro-program state —
    // op tags, CSR edge bounds, needed-port masks, static operands —
    // surviving a reconfigure would corrupt results or statistics.
    let grid = GridSpec::paper();
    let kernels = [copy_kernel(), sqrt_kernel(), branchy_kernel()];
    let compiled: Vec<CompiledKernel> =
        kernels.iter().map(|k| compile(k, &grid).unwrap()).collect();
    let params: [&[Word]; 3] = [
        &[Word::ZERO, Word::from_u32(512)],
        &[Word::ZERO],
        &[Word::ZERO],
    ];
    let threads = 256;

    // Fresh-fabric baselines.
    let baseline: Vec<RunOut> = compiled
        .iter()
        .zip(params)
        .map(|(ck, p)| {
            run_block(
                ck,
                FabricConfig::default(),
                p,
                threads,
                2048,
                12,
                false,
                false,
            )
        })
        .collect();

    // The same sequence, twice over, through one reused fabric.
    let mut fabric = Fabric::new(grid, FabricConfig::default());
    for round in 0..2 {
        for (i, (ck, p)) in compiled.iter().zip(params).enumerate() {
            let mut env =
                FixedLatencyEnv::new(MemoryImage::new(2048), ck.num_live_values(), threads, 12);
            let cb = &ck.blocks[0];
            let start = fabric.cycle();
            fabric.reset_stats();
            fabric
                .configure(&cb.dfg, &cb.replicas, p)
                .expect("reconfigure");
            for tid in 0..threads {
                fabric.inject(tid);
            }
            let mut retired = Vec::new();
            let mut spin = 0u64;
            while !fabric.is_drained() {
                fabric.tick(&mut env);
                for req in env.tick() {
                    fabric.on_mem_response(req).expect("paired response");
                }
                retired.extend(fabric.drain_retired());
                spin += 1;
                assert!(spin < 2_000_000, "fabric failed to drain");
            }
            let name = format!("round {round} kernel {i}");
            assert_eq!(
                retired, baseline[i].retired,
                "{name}: retirement stream diverges after reconfigure"
            );
            assert_eq!(
                fabric.cycle() - start,
                baseline[i].cycles,
                "{name}: cycle count diverges after reconfigure"
            );
            assert_eq!(
                *fabric.stats(),
                baseline[i].stats,
                "{name}: fabric statistics diverge after reconfigure"
            );
            for a in 0..2048 {
                assert_eq!(
                    baseline[i].mem.read(a),
                    env.mem.read(a),
                    "{name}: memory diverges at word {a}"
                );
            }
        }
    }
}

#[test]
fn reconfigure_after_skipped_run_is_clean() {
    // A drained event-driven fabric must leave no residue (wheel slots,
    // in_active flags, busy channels) that a later configure could trip
    // over — configure's internal debug assertions check the invariants,
    // and the second run's results check them in release builds too.
    let grid = GridSpec::paper();
    let ck = compile(&copy_kernel(), &grid).unwrap();
    let ck2 = compile(&store_kernel(), &grid).unwrap();

    let mut fabric = Fabric::new(grid, FabricConfig::default());
    let mut env = FixedLatencyEnv::new(MemoryImage::new(1024), 0, 256, 40);

    let drive = |fabric: &mut Fabric, env: &mut FixedLatencyEnv| {
        let mut spin = 0u64;
        while !fabric.is_drained() {
            if fabric.is_quiescent() {
                let now = fabric.cycle();
                let next = match (fabric.next_wheel_event(), env.next_event_cycle()) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, None) => a,
                    (None, b) => b,
                };
                if let Some(t) = next {
                    if t > now + 1 {
                        fabric.advance_idle(t - now - 1);
                        env.advance_idle(t - now - 1);
                    }
                }
            }
            fabric.tick(env);
            for req in env.tick() {
                fabric.on_mem_response(req).expect("paired response");
            }
            fabric.drain_retired();
            spin += 1;
            assert!(spin < 2_000_000);
        }
    };

    let cb = &ck.blocks[0];
    fabric
        .configure(&cb.dfg, &cb.replicas, &[Word::ZERO, Word::from_u32(256)])
        .expect("configure copy");
    for tid in 0..256 {
        fabric.inject(tid);
    }
    drive(&mut fabric, &mut env);

    let cb2 = &ck2.blocks[0];
    fabric
        .configure(&cb2.dfg, &cb2.replicas, &[Word::from_u32(512)])
        .expect("configure store after skipped run");
    for tid in 0..256 {
        fabric.inject(tid);
    }
    drive(&mut fabric, &mut env);

    for t in 0..256u32 {
        assert_eq!(env.mem.read(256 + t), env.mem.read(t), "copy output");
        assert_eq!(env.mem.read(512 + t).as_u32(), t, "store output");
    }
}
