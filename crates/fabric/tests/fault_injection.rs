//! Fault-injection proofs at the fabric level: every injected fault class
//! is caught — by the watchdog (hangs), the memory pairing check
//! (duplicated responses) or typed configuration errors — within a bounded
//! number of cycles, and the diagnostic names the stuck resource.

use vgiw_compiler::{compile, GridSpec};
use vgiw_fabric::test_env::FixedLatencyEnv;
use vgiw_fabric::{ConfigError, Fabric, FabricConfig, FabricFaults, FaultyEnv};
use vgiw_ir::{Kernel, KernelBuilder, MemoryImage, Word};
use vgiw_robust::{InvariantKind, Watchdog};

fn load_store_kernel() -> Kernel {
    let mut b = KernelBuilder::new("copy", 2);
    let tid = b.thread_id();
    let src = b.param(0);
    let dst = b.param(1);
    let sa = b.add(src, tid);
    let v = b.load(sa);
    let da = b.add(dst, tid);
    b.store(da, v);
    b.finish()
}

/// Drives the fabric with a watchdog armed; returns `Ok(retired)` if it
/// drains, or `Err(stalled_for)` when the watchdog expires.
fn drive_with_watchdog(
    fabric: &mut Fabric,
    env: &mut FixedLatencyEnv,
    budget: u64,
) -> Result<usize, u64> {
    let mut wd = Watchdog::new(budget, fabric.cycle());
    let mut retired = 0usize;
    while !fabric.is_drained() {
        let firings_before = fabric.stats().firings;
        fabric.tick(env);
        let mut progressed = fabric.stats().firings != firings_before;
        for req in env.tick() {
            fabric.on_mem_response(req).expect("paired response");
            progressed = true;
        }
        let r = fabric.drain_retired();
        progressed |= !r.is_empty();
        retired += r.len();
        let now = fabric.cycle();
        if progressed {
            wd.progress(now);
        } else if wd.expired(now) {
            return Err(wd.stalled_for(now));
        }
    }
    Ok(retired)
}

#[test]
fn dropped_token_hangs_and_snapshot_names_the_node() {
    let grid = GridSpec::paper();
    let ck = compile(&load_store_kernel(), &grid).unwrap();
    let mut fabric = Fabric::new(grid, FabricConfig::default());
    let mut env = FixedLatencyEnv::new(MemoryImage::new(2048), 0, 256, 12);
    let cb = &ck.blocks[0];
    fabric
        .configure(
            &cb.dfg,
            &cb.replicas[..1],
            &[Word::ZERO, Word::from_u32(512)],
        )
        .expect("configure");
    fabric.set_faults(FabricFaults::drop_token(40));
    for tid in 0..256 {
        fabric.inject(tid);
    }
    let stalled = drive_with_watchdog(&mut fabric, &mut env, 5_000)
        .expect_err("dropped token must hang the fabric");
    assert!(stalled > 5_000);
    // The snapshot pinpoints where tokens are stuck.
    let snap = fabric.snapshot();
    assert!(snap.active_channels > 0, "channels still waiting");
    assert!(
        snap.nodes.iter().any(|n| n.buffered > 0 || n.ready > 0),
        "snapshot names at least one node holding tokens"
    );
    let resources = snap.stuck_resources();
    assert!(resources.iter().any(|r| r.name.contains("fabric node")));
}

#[test]
fn wedged_memory_system_hangs_within_budget() {
    let grid = GridSpec::paper();
    let ck = compile(&load_store_kernel(), &grid).unwrap();
    let mut fabric = Fabric::new(grid, FabricConfig::default());
    let inner = FixedLatencyEnv::new(MemoryImage::new(2048), 0, 256, 12);
    let mut env = FaultyEnv::new(inner);
    env.stall_after = Some(10);
    let cb = &ck.blocks[0];
    fabric
        .configure(
            &cb.dfg,
            &cb.replicas[..1],
            &[Word::ZERO, Word::from_u32(512)],
        )
        .expect("configure");
    for tid in 0..256 {
        fabric.inject(tid);
    }
    let mut wd = Watchdog::new(5_000, fabric.cycle());
    let mut hung = false;
    while !fabric.is_drained() {
        let firings_before = fabric.stats().firings;
        fabric.tick(&mut env);
        let mut progressed = fabric.stats().firings != firings_before;
        for req in env.inner.tick() {
            fabric.on_mem_response(req).expect("paired response");
            progressed = true;
        }
        progressed |= !fabric.drain_retired().is_empty();
        let now = fabric.cycle();
        if progressed {
            wd.progress(now);
        } else if wd.expired(now) {
            hung = true;
            break;
        }
    }
    assert!(hung, "a wedged memory system must trip the watchdog");
    assert!(fabric.snapshot().active_channels > 0);
}

#[test]
fn duplicate_response_is_a_typed_pairing_violation() {
    let grid = GridSpec::paper();
    let ck = compile(&load_store_kernel(), &grid).unwrap();
    let mut fabric = Fabric::new(grid, FabricConfig::default());
    let mut env = FixedLatencyEnv::new(MemoryImage::new(2048), 0, 64, 12);
    let cb = &ck.blocks[0];
    fabric
        .configure(
            &cb.dfg,
            &cb.replicas[..1],
            &[Word::ZERO, Word::from_u32(512)],
        )
        .expect("configure");
    for tid in 0..64 {
        fabric.inject(tid);
    }
    let mut violation = None;
    'outer: while !fabric.is_drained() {
        fabric.tick(&mut env);
        for req in env.tick() {
            fabric.on_mem_response(req).expect("paired response");
            // Replay the same completion: the slab slot is already free.
            if let Err(v) = fabric.on_mem_response(req) {
                violation = Some(v);
                break 'outer;
            }
        }
        fabric.drain_retired();
    }
    let v = violation.expect("duplicate completion must be rejected");
    assert_eq!(v.kind, InvariantKind::MemPairing);
    assert!(
        v.detail.contains("unknown or already-completed"),
        "{}",
        v.detail
    );
}

#[test]
fn missing_launch_parameter_is_a_typed_config_error() {
    let grid = GridSpec::paper();
    let ck = compile(&load_store_kernel(), &grid).unwrap();
    let mut fabric = Fabric::new(grid, FabricConfig::default());
    let cb = &ck.blocks[0];
    // The kernel reads params 0 and 1; pass only one.
    let err = fabric
        .configure(&cb.dfg, &cb.replicas[..1], &[Word::ZERO])
        .expect_err("missing parameter must be rejected");
    match err {
        ConfigError::MissingParam { index } => assert_eq!(index, 1),
        other => panic!("expected MissingParam, got {other:?}"),
    }
    assert_eq!(err.to_string(), "missing launch parameter 1");
}
