//! End-to-end fabric tests: compile kernels, stream threads through the
//! fabric block by block (a miniature basic block scheduler), and check
//! bit-exact agreement with the reference interpreter.

use vgiw_compiler::ifconvert::if_convert;
use vgiw_compiler::{compile, GridSpec};
use vgiw_fabric::test_env::FixedLatencyEnv;
use vgiw_fabric::{Fabric, FabricConfig};
use vgiw_ir::{interp, Kernel, KernelBuilder, Launch, MemoryImage, Word};

/// Runs a compiled kernel on the fabric with a miniature block scheduler:
/// smallest nonempty block vector first, full drain between blocks.
fn run_on_fabric(
    kernel: &Kernel,
    launch: &Launch,
    mem: MemoryImage,
    replica_cap: usize,
) -> (MemoryImage, u64) {
    let grid = GridSpec::paper();
    let ck = compile(kernel, &grid).expect("kernel must compile");
    let threads = launch.num_threads;
    let mut env = FixedLatencyEnv::new(mem, ck.num_live_values(), threads, 8);
    let mut fabric = Fabric::new(grid, FabricConfig::default());

    let nb = ck.kernel.num_blocks();
    let mut vectors: Vec<Vec<bool>> = vec![vec![false; threads as usize]; nb];
    vectors[0].fill(true);

    let mut guard = 0;
    while let Some(block) = vectors.iter().position(|v| v.iter().any(|&b| b)) {
        guard += 1;
        assert!(guard < 100_000, "scheduler livelock");
        let cb = &ck.blocks[block];
        let replicas = &cb.replicas[..cb.replicas.len().min(replica_cap)];
        fabric
            .configure(&cb.dfg, replicas, &launch.params)
            .expect("configure");
        for (tid, slot) in vectors[block].iter_mut().enumerate() {
            if *slot {
                *slot = false;
                fabric.inject(tid as u32);
            }
        }
        let mut spin = 0u64;
        while !fabric.is_drained() {
            fabric.tick(&mut env);
            for req in env.tick() {
                fabric.on_mem_response(req).expect("paired response");
            }
            for r in fabric.drain_retired() {
                if let Some(t) = r.target {
                    vectors[t.index()][r.tid as usize] = true;
                }
            }
            spin += 1;
            assert!(spin < 10_000_000, "fabric failed to drain block {block}");
        }
    }
    (env.mem, fabric.cycle())
}

fn reference(kernel: &Kernel, launch: &Launch, mem: &MemoryImage) -> MemoryImage {
    let mut m = mem.clone();
    interp::run(kernel, launch, &mut m).expect("interpreter must succeed");
    m
}

fn squares_kernel() -> Kernel {
    let mut b = KernelBuilder::new("squares", 2);
    let tid = b.thread_id();
    let out = b.param(0);
    let n = b.param(1);
    let c = b.lt_u(tid, n);
    b.if_(c, |b| {
        let sq = b.mul(tid, tid);
        let addr = b.add(out, tid);
        b.store(addr, sq);
    });
    b.finish()
}

#[test]
fn straight_line_matches_interpreter() {
    let mut b = KernelBuilder::new("k", 1);
    let tid = b.thread_id();
    let base = b.param(0);
    let addr = b.add(base, tid);
    let three = b.const_u32(3);
    let v = b.mul(tid, three);
    b.store(addr, v);
    let k = b.finish();

    let launch = Launch::new(64, vec![Word::from_u32(0)]);
    let mem = MemoryImage::new(128);
    let expect = reference(&k, &launch, &mem);
    let (got, cycles) = run_on_fabric(&k, &launch, mem, 8);
    assert!(got == expect, "fabric memory differs from interpreter");
    assert!(cycles > 0);
}

#[test]
fn divergent_kernel_matches_interpreter() {
    let k = squares_kernel();
    let launch = Launch::new(100, vec![Word::from_u32(0), Word::from_u32(60)]);
    let mem = MemoryImage::new(256);
    let expect = reference(&k, &launch, &mem);
    let (got, _) = run_on_fabric(&k, &launch, mem, 8);
    assert!(got == expect);
}

#[test]
fn nested_divergence_matches_interpreter() {
    // The paper's Figure-1 control shape.
    let mut b = KernelBuilder::new("fig1", 1);
    let tid = b.thread_id();
    let base = b.param(0);
    let addr = b.add(base, tid);
    let three = b.const_u32(3);
    let c1 = b.rem_u(tid, three);
    let z = b.const_u32(0);
    let is0 = b.eq(c1, z);
    b.if_else(
        is0,
        |b| {
            let v = b.mul(tid, tid);
            b.store(addr, v);
        },
        |b| {
            let five = b.const_u32(5);
            let c2 = b.lt_u(tid, five);
            b.if_else(
                c2,
                |b| {
                    let v = b.add(tid, tid);
                    b.store(addr, v);
                },
                |b| {
                    let seven = b.const_u32(7);
                    let v = b.add(tid, seven);
                    b.store(addr, v);
                },
            );
        },
    );
    let k = b.finish();
    let launch = Launch::new(64, vec![Word::from_u32(0)]);
    let mem = MemoryImage::new(128);
    let expect = reference(&k, &launch, &mem);
    let (got, _) = run_on_fabric(&k, &launch, mem, 8);
    assert!(got == expect);
}

#[test]
fn loop_kernel_matches_interpreter() {
    // out[tid] = sum(0..tid%7)
    let mut b = KernelBuilder::new("loopy", 1);
    let tid = b.thread_id();
    let base = b.param(0);
    let seven = b.const_u32(7);
    let bound = b.rem_u(tid, seven);
    let zero = b.const_u32(0);
    let acc = b.var(zero);
    let i = b.var(zero);
    b.while_(
        |b| {
            let iv = b.get(i);
            b.lt_u(iv, bound)
        },
        |b| {
            let iv = b.get(i);
            let a = b.get(acc);
            let s = b.add(a, iv);
            b.set(acc, s);
            let one = b.const_u32(1);
            let n = b.add(iv, one);
            b.set(i, n);
        },
    );
    let addr = b.add(base, tid);
    let a = b.get(acc);
    b.store(addr, a);
    let k = b.finish();

    let launch = Launch::new(48, vec![Word::from_u32(0)]);
    let mem = MemoryImage::new(64);
    let expect = reference(&k, &launch, &mem);
    let (got, _) = run_on_fabric(&k, &launch, mem, 8);
    assert!(got == expect);
}

#[test]
fn memory_ordering_within_thread_holds() {
    // Each thread: store x; load x; store y=loaded+1 — needs joins.
    let mut b = KernelBuilder::new("order", 1);
    let tid = b.thread_id();
    let base = b.param(0);
    let a0 = b.add(base, tid);
    let v0 = b.mul(tid, tid);
    b.store(a0, v0);
    let loaded = b.load(a0);
    let one = b.const_u32(1);
    let v1 = b.add(loaded, one);
    let sixty4 = b.const_u32(64);
    let a1 = b.add(a0, sixty4);
    b.store(a1, v1);
    let k = b.finish();

    let launch = Launch::new(32, vec![Word::from_u32(0)]);
    let mem = MemoryImage::new(256);
    let expect = reference(&k, &launch, &mem);
    let (got, _) = run_on_fabric(&k, &launch, mem, 8);
    assert!(got == expect);
}

#[test]
fn replication_improves_throughput() {
    let k = squares_kernel();
    let launch = Launch::new(512, vec![Word::from_u32(0), Word::from_u32(512)]);
    let (_, cycles_1) = run_on_fabric(&k, &launch, MemoryImage::new(1024), 1);
    let (_, cycles_8) = run_on_fabric(&k, &launch, MemoryImage::new(1024), 8);
    assert!(
        cycles_8 * 2 < cycles_1,
        "8 replicas ({cycles_8} cycles) should be much faster than 1 ({cycles_1})"
    );
}

#[test]
fn sgmf_predicated_graph_matches_interpreter() {
    let k = squares_kernel();
    let grid = GridSpec::paper();
    let dfg = if_convert(&k, &grid).expect("squares is SGMF-mappable");

    let launch = Launch::new(64, vec![Word::from_u32(0), Word::from_u32(40)]);
    let mem = MemoryImage::new(128);
    let expect = reference(&k, &launch, &mem);

    // Place one copy of the whole-kernel graph.
    let mut free = vec![true; grid.num_units()];
    let placement = vgiw_compiler::place::place(&dfg, &grid, &mut free).expect("fits");
    let mut env = FixedLatencyEnv::new(mem, 0, launch.num_threads, 8);
    let mut fabric = Fabric::new(grid, FabricConfig::default());
    fabric
        .configure(&dfg, &[placement], &launch.params)
        .expect("configure");
    for tid in 0..launch.num_threads {
        fabric.inject(tid);
    }
    let mut spin = 0u64;
    while !fabric.is_drained() {
        fabric.tick(&mut env);
        for req in env.tick() {
            fabric.on_mem_response(req).expect("paired response");
        }
        fabric.drain_retired();
        spin += 1;
        assert!(spin < 10_000_000, "SGMF graph failed to drain");
    }
    assert!(env.mem == expect, "SGMF predicated execution diverged");
    // Threads 40..64 must have suppressed their stores.
    assert_eq!(fabric.stats().suppressed_stores, 24);
}

#[test]
fn lvc_traffic_is_much_lower_than_total_traffic() {
    // Compute-heavy divergent kernel: most values stay inside blocks.
    let mut b = KernelBuilder::new("heavy", 1);
    let tid = b.thread_id();
    let base = b.param(0);
    let two = b.const_u32(2);
    let parity = b.rem_u(tid, two);
    let addr = b.add(base, tid);
    b.if_else(
        parity,
        |b| {
            let mut v = tid;
            for _ in 0..10 {
                let t = b.mul(v, v);
                v = b.add(t, tid);
            }
            b.store(addr, v);
        },
        |b| {
            let mut v = tid;
            for _ in 0..10 {
                v = b.add(v, v);
            }
            b.store(addr, v);
        },
    );
    let k = b.finish();
    let launch = Launch::new(128, vec![Word::from_u32(0)]);
    let mem = MemoryImage::new(256);
    let expect = reference(&k, &launch, &mem);
    let (got, _) = run_on_fabric(&k, &launch, mem, 8);
    assert!(got == expect);
}
