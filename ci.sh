#!/bin/sh
# Offline CI: format, lint, build, test. Run from the repo root.
set -eu

# Wall-clock cap on every test invocation: a hung test (the exact failure
# mode the robustness layer exists to catch) must fail CI, not wedge it.
TEST_TIMEOUT="${TEST_TIMEOUT:-900}"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (workspace, all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test (workspace, ${TEST_TIMEOUT}s cap)"
timeout "$TEST_TIMEOUT" cargo test --workspace -q

echo "==> fault injection (every fault class caught within budget)"
# Deterministic fault plans — dropped tokens, dropped retirements,
# dropped/duplicated memory responses, flipped CVT bits, wedged memory
# systems — must each be caught by the watchdog or an invariant checker
# and produce a diagnostic naming the stuck resource.
timeout "$TEST_TIMEOUT" cargo test --release -q -p vgiw-fabric --test fault_injection
timeout "$TEST_TIMEOUT" cargo test --release -q -p vgiw-core -- watchdog violation conservation
timeout "$TEST_TIMEOUT" cargo test --release -q -p vgiw-simt -- watchdog violation
timeout "$TEST_TIMEOUT" cargo test --release -q -p vgiw-sgmf -- watchdog violation conservation

echo "==> golden cycle counts (per app, per machine)"
# Simulated cycle counts are part of the repo's contract: simulator-speed
# work (event-driven fabric, fast-forward, worker pools) must never change
# them. Any intentional timing-model change must regenerate this baseline
# and explain the delta.
tmp="$(mktemp)"
tmp_checked="$(mktemp)"
tmp_traced="$(mktemp)"
tmp_trace_json="$(mktemp)"
tmp_reference="$(mktemp)"
tmp_reference_mem="$(mktemp)"
tmp_serve="$(mktemp)"
tmp_jobs="$(mktemp)"
trap 'rm -f "$tmp" "$tmp_checked" "$tmp_traced" "$tmp_trace_json" "$tmp_reference" "$tmp_reference_mem" "$tmp_serve" "$tmp_jobs" "${tmp_resume:-}" "${tmp_resume_checked:-}" "${ckpt:-}"' EXIT
for m in vgiw simt sgmf; do
    cargo run --release -q -p vgiw-bench --bin experiments -- run all --machine "$m" 2>/dev/null
done > "$tmp"
diff golden_cycles.txt "$tmp" || {
    echo "ci: simulated cycle counts changed (see diff above)" >&2
    exit 1
}

echo "==> golden cycle counts with invariant checks enabled"
# The watchdog and checkers are pure observers: a clean suite must report
# zero violations (no false positives) and bit-identical cycle counts.
for m in vgiw simt sgmf; do
    cargo run --release -q -p vgiw-bench --bin experiments -- all --machine "$m" --checks 2>/dev/null
done > "$tmp_checked"
diff golden_cycles.txt "$tmp_checked" || {
    echo "ci: invariant checks perturbed cycle counts or flagged a clean run" >&2
    exit 1
}

echo "==> golden cycle counts on the dense reference tick"
# The compiled micro-program engine is the default; the retained dense
# reference tick is its bit-exactness oracle. Forcing every run onto the
# reference must reproduce the identical golden table, so both engines
# stay green and any future divergence is caught here.
for m in vgiw simt sgmf; do
    cargo run --release -q -p vgiw-bench --bin experiments -- all --machine "$m" --reference 2>/dev/null
done > "$tmp_reference"
diff golden_cycles.txt "$tmp_reference" || {
    echo "ci: reference tick diverges from the micro-program engine" >&2
    exit 1
}

echo "==> golden cycle counts on the reference memory path"
# Same contract for the memory hierarchy: the batch-coalesced zero-copy
# fast path is the default; the retained per-request reference path is
# its bit-exactness oracle. Forcing every machine onto it must reproduce
# the identical golden table.
for m in vgiw simt sgmf; do
    cargo run --release -q -p vgiw-bench --bin experiments -- all --machine "$m" --reference-mem 2>/dev/null
done > "$tmp_reference_mem"
diff golden_cycles.txt "$tmp_reference_mem" || {
    echo "ci: reference memory path diverges from the coalesced fast path" >&2
    exit 1
}

echo "==> golden cycle counts with tracing enabled"
# The trace layer is a pure observer too: recording a full event log for
# every run must leave the cycle table byte-identical. This pass uses the
# historical bare spelling (no `run` subcommand) on purpose: it must keep
# parsing as an implicit `run`.
for m in vgiw simt sgmf; do
    cargo run --release -q -p vgiw-bench --bin experiments -- all --machine "$m" --traced 2>/dev/null
done > "$tmp_traced"
diff golden_cycles.txt "$tmp_traced" || {
    echo "ci: tracing perturbed cycle counts" >&2
    exit 1
}

echo "==> kill-and-resume golden cycle counts"
# Checkpoint/resume must be bit-exact: a run aborted mid-benchmark (after
# a handful of per-launch checkpoint writes) and resumed from the file
# must reproduce the identical golden table. Repeated with --checks per
# the snapshot contract (DESIGN.md §11).
tmp_resume="$(mktemp)"
tmp_resume_checked="$(mktemp)"
ckpt="$(mktemp -u)"
for m in vgiw simt sgmf; do
    cargo run --release -q -p vgiw-bench --bin experiments -- \
        all --machine "$m" --checkpoint-every 2 --checkpoint-file "$ckpt" \
        --crash-after-launches 3 >/dev/null 2>&1 || true
    cargo run --release -q -p vgiw-bench --bin experiments -- \
        all --machine "$m" --resume "$ckpt" 2>/dev/null
    rm -f "$ckpt"
done > "$tmp_resume"
diff golden_cycles.txt "$tmp_resume" || {
    echo "ci: resumed run diverges from the golden table" >&2
    exit 1
}
for m in vgiw simt sgmf; do
    cargo run --release -q -p vgiw-bench --bin experiments -- \
        all --machine "$m" --checks --checkpoint-every 1 --checkpoint-file "$ckpt" \
        --crash-after-jobs 3 >/dev/null 2>&1 || true
    cargo run --release -q -p vgiw-bench --bin experiments -- \
        all --machine "$m" --checks --resume "$ckpt" 2>/dev/null
    rm -f "$ckpt"
done > "$tmp_resume_checked"
diff golden_cycles.txt "$tmp_resume_checked" || {
    echo "ci: resumed run with --checks diverges from the golden table" >&2
    exit 1
}

echo "==> job-service golden cycle counts (1 and 4 worker shards)"
# Results served through the multi-tenant job service must be
# bit-identical to the direct harness: emit the suite's request lines per
# machine, pipe them through `experiments serve`, and diff the rendered
# table against the golden file — single-sharded and 4-way sharded.
for w in 1 4; do
    for m in vgiw simt sgmf; do
        cargo run --release -q -p vgiw-bench --bin experiments -- \
            serve --emit-jobs "$m" 2>/dev/null > "$tmp_jobs"
        cargo run --release -q -p vgiw-bench --bin experiments -- \
            serve --table --workers "$w" --file "$tmp_jobs" 2>/dev/null
    done > "$tmp_serve"
    diff golden_cycles.txt "$tmp_serve" || {
        echo "ci: served results diverge from the golden table ($w worker shard(s))" >&2
        exit 1
    }
done

echo "==> bombard smoke (scaling honesty + warm cache hits)"
# A short load test: the binary itself exits nonzero unless 1-worker and
# N-worker results are bit-identical, no job fails, and the duplicated
# mix produces cache/dedup hits. Run in a scratch dir so the tracked
# BENCH_perf.json is not dirtied; still assert the merged "serve" block
# lands in the report.
bomb_dir="$(mktemp -d)"
repo_root="$(pwd)"
cp BENCH_perf.json "$bomb_dir"/ 2>/dev/null || true
(cd "$bomb_dir" && "$repo_root/target/release/experiments" bombard --workers 2 --clients 2 2>/dev/null)
grep -q '"serve"' "$bomb_dir/BENCH_perf.json" || {
    echo "ci: bombard did not merge a serve block into BENCH_perf.json" >&2
    exit 1
}
grep -q '"cache_hit_rate"' "$bomb_dir/BENCH_perf.json" || {
    echo "ci: bombard serve block is missing the cache hit rate" >&2
    exit 1
}
rm -rf "$bomb_dir"

echo "==> chaos smoke round (seeded, shrunk, replayable)"
# A short deterministic chaos campaign: every caught fault must recover
# via checkpoint-restore and every non-benign plan must shrink to a
# reproducer that replays deterministically — the campaign exits nonzero
# otherwise (and on any unshrunk divergence).
chaos_dir="$(mktemp -d)"
cargo run --release -q -p vgiw-bench --bin experiments -- \
    chaos --seed 7 --rounds 3 --watchdog-budget 20000 --out "$chaos_dir" 2>/dev/null
for f in "$chaos_dir"/chaos_repro_*.txt; do
    [ -e "$f" ] || continue
    cargo run --release -q -p vgiw-bench --bin experiments -- \
        chaos --replay "$f" --watchdog-budget 20000 >/dev/null 2>&1 || {
        echo "ci: chaos reproducer $f does not replay" >&2
        exit 1
    }
done
rm -rf "$chaos_dir"

echo "==> fuzz smoke (seeded differential campaign, bit-identical, replayable)"
# A short generative differential campaign: a fixed seed must agree across
# interp and all three machines with byte-identical output on two
# consecutive runs; the test-only injected fabric bug must be caught and
# shrunk to a reproducer; and the committed reproducer must still replay.
fuzz_dir="$(mktemp -d)"
cargo run --release -q -p vgiw-bench --bin experiments -- \
    fuzz --seed 7 --count 40 --out "$fuzz_dir" 2>/dev/null > "$fuzz_dir/run_a.txt"
cargo run --release -q -p vgiw-bench --bin experiments -- \
    fuzz --seed 7 --count 40 --out "$fuzz_dir" 2>/dev/null > "$fuzz_dir/run_b.txt"
diff "$fuzz_dir/run_a.txt" "$fuzz_dir/run_b.txt" || {
    echo "ci: fuzz campaign output is not run-to-run deterministic" >&2
    exit 1
}
VGIW_FUZZ_INJECT_DROP_TOKEN=0 cargo run --release -q -p vgiw-bench --bin experiments -- \
    fuzz --seed 41 --count 2 --out "$fuzz_dir" >/dev/null 2>&1 || {
    echo "ci: injected-fault fuzz campaign failed (finding did not replay)" >&2
    exit 1
}
ls "$fuzz_dir"/fuzz_repro_*.txt >/dev/null 2>&1 || {
    echo "ci: injected fabric fault produced no shrunk reproducer" >&2
    exit 1
}
cargo run --release -q -p vgiw-bench --bin experiments -- \
    fuzz --replay fuzz_repro_ci.txt >/dev/null 2>&1 || {
    echo "ci: committed reproducer fuzz_repro_ci.txt does not replay" >&2
    exit 1
}
rm -rf "$fuzz_dir"

echo "==> trace export smoke test (Chrome trace-event JSON)"
# `experiments trace` must emit a non-empty, strictly-valid Chrome trace
# (the binary itself validates the JSON and asserts the launch, configure
# and retirement events are present for VGIW).
cargo run --release -q -p vgiw-bench --bin experiments -- \
    trace --only NN --machine vgiw --out "$tmp_trace_json" 2>/dev/null
test -s "$tmp_trace_json" || {
    echo "ci: trace export wrote an empty file" >&2
    exit 1
}
grep -q '"traceEvents"' "$tmp_trace_json" || {
    echo "ci: trace export is not a Chrome trace-event document" >&2
    exit 1
}

echo "ci: OK"
