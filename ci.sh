#!/bin/sh
# Offline CI: format, lint, build, test. Run from the repo root.
set -eu

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (workspace, all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test (workspace)"
cargo test --workspace -q

echo "ci: OK"
