#!/bin/sh
# Offline CI: format, lint, build, test. Run from the repo root.
set -eu

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (workspace, all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test (workspace)"
cargo test --workspace -q

echo "==> golden cycle counts (per app, per machine)"
# Simulated cycle counts are part of the repo's contract: simulator-speed
# work (event-driven fabric, fast-forward, worker pools) must never change
# them. Any intentional timing-model change must regenerate this baseline
# and explain the delta.
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT
for m in vgiw simt sgmf; do
    cargo run --release -q -p vgiw-bench --bin experiments -- all --machine "$m" 2>/dev/null
done > "$tmp"
diff golden_cycles.txt "$tmp" || {
    echo "ci: simulated cycle counts changed (see diff above)" >&2
    exit 1
}

echo "ci: OK"
